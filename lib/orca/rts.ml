module Thread = Machine.Thread
module Mach = Machine.Mach

type placement =
  | Replicated
  | Owned of int
  | Adaptive of { owner : int; state_bytes : int }

type Sim.Payload.t +=
  | Op_msg of {
      om_obj : int;
      om_op : int;
      om_rank : int;
      om_inv : int;
      om_arg : Sim.Payload.t;
    }
  | Migrate_msg of { mg_obj : int; mg_from : int; mg_to : int }
  | Wrong_owner

(* Bytes of RTS framing inside an operation message, beyond the argument. *)
let op_msg_overhead = 16
let default_size _ = 16
let default_cost _ _ = Sim.Time.us 5

type parked = {
  pk_guard : unit -> bool;
  pk_fire : unit -> unit;
}

type dispatch_entry = {
  de_apply : op_id:int -> Sim.Payload.t -> Sim.Payload.t;
      (* apply a broadcast write locally (guards were settled at the
         sender); retries parked continuations *)
  de_rpc :
    client:int -> op_id:int -> Sim.Payload.t -> complete:(Sim.Payload.t -> unit) -> unit;
      (* owner-side execution with guard/continuation handling *)
  de_res_size : op_id:int -> Sim.Payload.t -> int;
  de_migrate : from_rank:int -> to_rank:int -> unit;
      (* apply an ordered owner change at this rank *)
}

type cell = {
  mutable c_result : Sim.Payload.t option;
  mutable c_resume : (unit -> unit) option;
  c_nonblocking : bool;
}

type domain = {
  backends : Backend.t array;
  rts_overhead : Sim.Time.span;
  rank_by_mach : (int, int) Hashtbl.t;
  dispatch : (int, dispatch_entry) Hashtbl.t;
  pending : (int, cell) Hashtbl.t array;
  next_inv : int array;
  mutable next_obj : int;
  mutable n_broadcast : int;
  mutable n_remote : int;
  mutable parked_now : int;
  mutable parked_peak : int;
  mutable parked_count : int;
  mutable n_migrations : int;
}

type 'st op_rec = {
  op_id : int;
  op_name : string;
  op_kind : [ `Read | `Write ];
  op_guard : ('st -> Sim.Payload.t -> bool) option;
  op_cost : 'st -> Sim.Payload.t -> Sim.Time.span;
  op_arg_size : Sim.Payload.t -> int;
  op_res_size : Sim.Payload.t -> int;
  op_exec : 'st -> Sim.Payload.t -> Sim.Payload.t;
}

type 'st odesc = {
  od_id : int;
  od_name : string;
  od_placement : placement;
  od_dom : domain;
  mutable od_owner : int; (* current owner; -1 for replicated objects *)
  od_adaptive : bool;
  od_state_bytes : int;
  od_access : int array; (* per-rank access counts, kept by the owner *)
  mutable od_migrating : bool;
  mutable od_ops : 'st op_rec array;
  od_replicas : 'st option array;
  od_parked : parked Queue.t array;
}

type 'st opref = { or_od : 'st odesc; or_op : 'st op_rec }

let size dom = Array.length dom.backends
let machine dom rank = dom.backends.(rank).Backend.machine
let backend_label dom = dom.backends.(0).Backend.label
let broadcasts dom = dom.n_broadcast
let remote_invocations dom = dom.n_remote
let parked_peak dom = dom.parked_peak
let parked_total dom = dom.parked_count
let migrations dom = dom.n_migrations

let retransmissions dom =
  Array.fold_left (fun acc b -> acc + b.Backend.retransmissions ()) 0 dom.backends

let owner_of od = if od.od_owner >= 0 then Some od.od_owner else None
let placement od = od.od_placement

let rank_here dom =
  let mach = Thread.machine (Thread.self ()) in
  match Hashtbl.find_opt dom.rank_by_mach (Mach.id mach) with
  | Some rank -> rank
  | None -> invalid_arg "Rts: calling thread's machine is not part of the domain"

let get_op od op_id =
  if op_id < 0 || op_id >= Array.length od.od_ops then
    invalid_arg (Printf.sprintf "Rts: object %s has no operation %d" od.od_name op_id)
  else od.od_ops.(op_id)

let replica od rank =
  match od.od_replicas.(rank) with
  | Some st -> st
  | None ->
    invalid_arg
      (Printf.sprintf "Rts: object %s has no replica at rank %d" od.od_name rank)

let guard_ok op st arg =
  match op.op_guard with None -> true | Some g -> g st arg

(* Execute the operation body in the calling thread's context. *)
let exec_op dom od rank op arg =
  let st = replica od rank in
  Thread.compute ~layer:Obs.Layer.Orca (dom.rts_overhead + op.op_cost st arg);
  op.op_exec st arg

(* After a write, re-evaluate blocked continuations at this replica; fire
   the runnable ones in the current thread (the paper's continuation
   optimisation: the state-modifying thread completes blocked operations
   itself). *)
let rec retry_parked dom od rank =
  let q = od.od_parked.(rank) in
  let n = Queue.length q in
  let progressed = ref false in
  for _ = 1 to n do
    match Queue.take_opt q with
    | None -> ()
    | Some pk ->
      if pk.pk_guard () then begin
        progressed := true;
        dom.parked_now <- dom.parked_now - 1;
        pk.pk_fire ()
      end
      else Queue.push pk q
  done;
  if !progressed && Queue.length q > 0 then retry_parked dom od rank

let park dom od rank pk =
  dom.parked_now <- dom.parked_now + 1;
  dom.parked_count <- dom.parked_count + 1;
  if dom.parked_now > dom.parked_peak then dom.parked_peak <- dom.parked_now;
  Queue.push pk od.od_parked.(rank)

(* Owner-side (or local) execution with guard handling: either run now, or
   park a continuation that executes and completes when the guard turns
   true. *)
let exec_or_park dom od rank op arg ~complete =
  let st = replica od rank in
  if guard_ok op st arg then begin
    let res = exec_op dom od rank op arg in
    if op.op_kind = `Write then retry_parked dom od rank;
    complete res
  end
  else
    park dom od rank
      {
        pk_guard = (fun () -> guard_ok op (replica od rank) arg);
        pk_fire =
          (fun () ->
            let res = exec_op dom od rank op arg in
            if op.op_kind = `Write then retry_parked dom od rank;
            complete res);
      }

(* --- adaptive placement ------------------------------------------- *)

(* The owner counts accesses per process; when another process dominates
   by [migrate_factor] over at least [migrate_min] accesses, the object
   moves there.  The owner change is a totally-ordered broadcast, so every
   rank switches at the same point relative to other replicated-object
   traffic; in-flight invocations to the old owner bounce and retry. *)
let migrate_factor = 3
let migrate_min = 24

let access_window = 256

let note_access dom od ~rank ~by =
  if od.od_adaptive && od.od_owner = rank && not od.od_migrating then begin
    od.od_access.(by) <- od.od_access.(by) + 1;
    (* Sliding window: old history decays so a shift in the access pattern
       eventually wins. *)
    if Array.fold_left ( + ) 0 od.od_access > access_window then
      Array.iteri (fun i v -> od.od_access.(i) <- v / 2) od.od_access;
    if
      by <> rank
      && od.od_access.(by) >= migrate_min
      && od.od_access.(by) > migrate_factor * od.od_access.(rank)
      && Queue.is_empty od.od_parked.(rank)
    then begin
      od.od_migrating <- true;
      let backend = dom.backends.(rank) in
      (* The blocking broadcast cannot run in an upcall context; a
         one-shot helper thread performs it. *)
      ignore
        (Thread.spawn backend.Backend.machine "rts.migrate" (fun () ->
             backend.Backend.broadcast ~nonblocking:false
               ~size:(op_msg_overhead + od.od_state_bytes)
               (Migrate_msg { mg_obj = od.od_id; mg_from = rank; mg_to = by })))
    end
  end

let apply_migration dom od ~rank ~from_rank ~to_rank =
  if rank = from_rank && rank <> to_rank then begin
    (* The old owner ships the state; in the simulation the replica slot
       moves (the bytes were charged by the broadcast). *)
    od.od_replicas.(to_rank) <- od.od_replicas.(from_rank);
    od.od_replicas.(from_rank) <- None
  end;
  if rank = from_rank then dom.n_migrations <- dom.n_migrations + 1;
  od.od_owner <- to_rank;
  od.od_migrating <- false;
  Array.fill od.od_access 0 (Array.length od.od_access) 0

let declare (type st) dom ~name ~placement ~init : st odesc =
  let initial_owner, adaptive, state_bytes =
    match placement with
    | Replicated -> (-1, false, 0)
    | Owned o -> (o, false, 0)
    | Adaptive { owner; state_bytes } -> (owner, true, state_bytes)
  in
  let n = size dom in
  dom.next_obj <- dom.next_obj + 1;
  let od : st odesc =
    {
      od_id = dom.next_obj;
      od_name = name;
      od_placement = placement;
      od_dom = dom;
      od_owner = initial_owner;
      od_adaptive = adaptive;
      od_state_bytes = state_bytes;
      od_access = Array.make n 0;
      od_migrating = false;
      od_ops = [||];
      od_replicas =
        Array.init n (fun rank ->
            if initial_owner < 0 then Some (init ~rank)
            else if rank = initial_owner then Some (init ~rank)
            else None);
      od_parked = Array.init n (fun _ -> Queue.create ());
    }
  in
  let entry =
    {
      de_apply =
        (fun ~op_id arg ->
          let rank = rank_here dom in
          let op = get_op od op_id in
          let res = exec_op dom od rank op arg in
          retry_parked dom od rank;
          res);
      de_rpc =
        (fun ~client ~op_id arg ~complete ->
          let rank = rank_here dom in
          if od.od_owner <> rank || od.od_replicas.(rank) = None then
            (* Stale directory at the caller (object migrated away, or the
               state has not caught up with an owner change): bounce. *)
            complete Wrong_owner
          else begin
            if client >= 0 then note_access dom od ~rank ~by:client;
            let op = get_op od op_id in
            exec_or_park dom od rank op arg ~complete
          end);
      de_res_size = (fun ~op_id res -> (get_op od op_id).op_res_size res);
      de_migrate =
        (fun ~from_rank ~to_rank ->
          let rank = rank_here dom in
          apply_migration dom od ~rank ~from_rank ~to_rank);
    }
  in
  Hashtbl.replace dom.dispatch od.od_id entry;
  od

let defop od ~name ~kind ?guard ?(cost = default_cost) ?(arg_size = default_size)
    ?(res_size = default_size) exec =
  let op =
    {
      op_id = Array.length od.od_ops;
      op_name = name;
      op_kind = kind;
      op_guard = guard;
      op_cost = cost;
      op_arg_size = arg_size;
      op_res_size = res_size;
      op_exec = exec;
    }
  in
  od.od_ops <- Array.append od.od_ops [| op |];
  { or_od = od; or_op = op }

(* A local invocation that may block the calling application thread on a
   guard; the thread that later satisfies the guard executes the body and
   hands us the result. *)
let invoke_local dom od rank op arg =
  let st = replica od rank in
  if guard_ok op st arg then begin
    let res = exec_op dom od rank op arg in
    if op.op_kind = `Write then retry_parked dom od rank;
    res
  end
  else begin
    let cell = { c_result = None; c_resume = None; c_nonblocking = false } in
    park dom od rank
      {
        pk_guard = (fun () -> guard_ok op (replica od rank) arg);
        pk_fire =
          (fun () ->
            let res = exec_op dom od rank op arg in
            if op.op_kind = `Write then retry_parked dom od rank;
            cell.c_result <- Some res;
            match cell.c_resume with
            | Some resume ->
              cell.c_resume <- None;
              resume ()
            | None -> ());
      };
    if cell.c_result = None then Thread.suspend (fun _ resume -> cell.c_resume <- Some resume);
    match cell.c_result with Some res -> res | None -> assert false
  end

let op_size op arg = op_msg_overhead + op.op_arg_size arg

let invoke ?(nonblocking = false) { or_od = od; or_op = op } arg =
  let dom = od.od_dom in
  let rank = rank_here dom in
  Obs.Recorder.with_span
    (Mach.engine (Thread.machine (Thread.self ())))
    Obs.Layer.Orca "invoke"
  @@ fun () ->
  match od.od_placement with
  | Owned _ | Adaptive _ ->
    (* The owner is dynamic for adaptive objects; chase it until an
       invocation lands (a bounced call retries against the updated
       directory). *)
    let rec attempt tries =
      if tries > 64 then invalid_arg "Rts.invoke: owner chase did not settle";
      let owner = od.od_owner in
      if owner = rank && od.od_replicas.(rank) <> None then begin
        note_access dom od ~rank ~by:rank;
        invoke_local dom od rank op arg
      end
      else begin
        dom.n_remote <- dom.n_remote + 1;
        let _size, res =
          dom.backends.(rank).Backend.rpc ~dst:owner ~size:(op_size op arg)
            (Op_msg { om_obj = od.od_id; om_op = op.op_id; om_rank = rank; om_inv = 0;
                      om_arg = arg })
        in
        match res with
        | Wrong_owner ->
          Thread.sleep (Sim.Time.us 500);
          attempt (tries + 1)
        | res -> res
      end
    in
    attempt 0
  | Replicated -> (
      match op.op_kind with
      | `Read -> invoke_local dom od rank op arg
      | `Write ->
        (* A guard on a replicated write is settled locally before
           broadcasting (the state is identical everywhere, so the guard
           holds at every replica when the write applies). *)
        (match op.op_guard with
         | Some g when not (g (replica od rank) arg) ->
           let cell = { c_result = None; c_resume = None; c_nonblocking = false } in
           park dom od rank
             {
               pk_guard = (fun () -> guard_ok op (replica od rank) arg);
               pk_fire =
                 (fun () ->
                   cell.c_result <- Some Sim.Payload.Empty;
                   match cell.c_resume with
                   | Some resume ->
                     cell.c_resume <- None;
                     resume ()
                   | None -> ());
             };
           if cell.c_result = None then
             Thread.suspend (fun _ resume -> cell.c_resume <- Some resume)
         | Some _ | None -> ());
        dom.n_broadcast <- dom.n_broadcast + 1;
        let backend = dom.backends.(rank) in
        let nb = nonblocking && backend.Backend.supports_nonblocking_broadcast in
        dom.next_inv.(rank) <- dom.next_inv.(rank) + 1;
        let inv = dom.next_inv.(rank) in
        let cell = { c_result = None; c_resume = None; c_nonblocking = nb } in
        Hashtbl.replace dom.pending.(rank) inv cell;
        backend.Backend.broadcast ~nonblocking:nb ~size:(op_size op arg)
          (Op_msg { om_obj = od.od_id; om_op = op.op_id; om_rank = rank; om_inv = inv;
                    om_arg = arg });
        if nb then Sim.Payload.Empty
        else begin
          if cell.c_result = None then
            Thread.suspend (fun _ resume -> cell.c_resume <- Some resume);
          Hashtbl.remove dom.pending.(rank) inv;
          match cell.c_result with Some res -> res | None -> assert false
        end)

(* Ordered delivery of a (replicated-object) write at this rank: apply it,
   and if it is our own invocation, hand the result to the waiting
   process. *)
let on_deliver dom rank ~sender ~size:_ payload =
  match payload with
  | Migrate_msg { mg_obj; mg_from; mg_to } -> (
      ignore sender;
      match Hashtbl.find_opt dom.dispatch mg_obj with
      | Some e -> e.de_migrate ~from_rank:mg_from ~to_rank:mg_to
      | None -> ())
  | Op_msg { om_obj; om_op; om_rank; om_inv; om_arg } ->
    assert (sender = om_rank);
    let entry =
      match Hashtbl.find_opt dom.dispatch om_obj with
      | Some e -> e
      | None -> invalid_arg "Rts: delivery for unknown object"
    in
    let res = entry.de_apply ~op_id:om_op om_arg in
    if om_rank = rank then (
      match Hashtbl.find_opt dom.pending.(rank) om_inv with
      | Some cell ->
        cell.c_result <- Some res;
        if cell.c_nonblocking then Hashtbl.remove dom.pending.(rank) om_inv
        else (
          match cell.c_resume with
          | Some resume ->
            cell.c_resume <- None;
            resume ()
          | None -> ())
      | None -> ())
  | _ -> ()

let on_rpc dom ~client ~size:_ payload ~reply =
  match payload with
  | Op_msg { om_obj; om_op; om_arg; _ } ->
    let entry =
      match Hashtbl.find_opt dom.dispatch om_obj with
      | Some e -> e
      | None -> invalid_arg "Rts: rpc for unknown object"
    in
    entry.de_rpc ~client ~op_id:om_op om_arg
      ~complete:(fun res ->
        match res with
        | Wrong_owner -> reply ~size:op_msg_overhead Wrong_owner
        | res ->
          reply ~size:(op_msg_overhead + entry.de_res_size ~op_id:om_op res) res)
  | _ -> reply ~size:0 Sim.Payload.Empty

let create_domain ?(rts_overhead = Sim.Time.us 10) backends =
  let n = Array.length backends in
  assert (n > 0);
  let dom =
    {
      backends;
      rts_overhead;
      rank_by_mach = Hashtbl.create n;
      dispatch = Hashtbl.create 16;
      pending = Array.init n (fun _ -> Hashtbl.create 8);
      next_inv = Array.make n 0;
      next_obj = 0;
      n_broadcast = 0;
      n_remote = 0;
      parked_now = 0;
      parked_peak = 0;
      parked_count = 0;
      n_migrations = 0;
    }
  in
  Array.iteri
    (fun rank b ->
      Hashtbl.replace dom.rank_by_mach (Mach.id b.Backend.machine) rank;
      b.Backend.set_deliver (fun ~sender ~size payload ->
          on_deliver dom rank ~sender ~size payload);
      b.Backend.set_rpc_handler (fun ~client ~size payload ~reply ->
          on_rpc dom ~client ~size payload ~reply))
    backends;
  dom

let peek od ~rank = replica od rank

let spawn dom ~rank name body =
  Thread.spawn (machine dom rank) ~prio:Thread.Normal name (fun () -> body ~rank)
