(** The Orca runtime system: shared data-objects over a communication
    backend.

    Objects are instances of abstract data types whose operations execute
    indivisibly.  The RTS places each object either {e replicated} (a copy
    on every rank: read operations execute locally, write operations are
    broadcast with total ordering and applied everywhere) or {e owned} by
    one rank (all remote operations go through RPC).  In the real system
    the placement decision comes from compiler heuristics; here the
    application supplies it, standing in for the compiler's output.

    Guarded operations (a predicate that must hold before the operation
    runs) block as {e continuations} queued at the object, re-evaluated
    after every write; no server thread is held — unless the kernel-space
    backend's same-thread-reply restriction forces one, which is exactly
    the effect the paper measures. *)

type domain

type placement =
  | Replicated
  | Owned of int
  | Adaptive of { owner : int; state_bytes : int }
      (** owned, with the runtime placement heuristic the paper describes:
          the owner counts accesses per process and, when another process
          dominates, migrates the object to it.  The owner change travels
          as a totally-ordered broadcast carrying [state_bytes] of state;
          in-flight invocations bounce with a wrong-owner reply and
          retry. *)

type 'st odesc
(** A shared-object descriptor whose per-rank state has type ['st]. *)

type 'st opref
(** One operation of an object type. *)

type Sim.Payload.t +=
  | Op_msg of {
      om_obj : int;
      om_op : int;
      om_rank : int;
      om_inv : int;
      om_arg : Sim.Payload.t;
    }  (** a marshalled operation invocation (exposed for tests) *)

val create_domain : ?rts_overhead:Sim.Time.span -> Backend.t array -> domain
(** [rts_overhead] (default 10 µs) is charged per operation invocation for
    RTS dispatch and marshalling besides per-byte copies. *)

val size : domain -> int
val machine : domain -> int -> Machine.Mach.t
val backend_label : domain -> string

val declare :
  domain -> name:string -> placement:placement -> init:(rank:int -> 'st) -> 'st odesc
(** Declares an object before the processes start.  [init] runs once per
    replica (every rank when replicated, the owner otherwise). *)

val placement : _ odesc -> placement

val owner_of : _ odesc -> int option
(** Current owner rank of an owned object ([None] when replicated);
    changes over time for adaptive objects. *)

val migrations : domain -> int
(** Object migrations performed by the adaptive placement heuristic. *)

val defop :
  'st odesc ->
  name:string ->
  kind:[ `Read | `Write ] ->
  ?guard:('st -> Sim.Payload.t -> bool) ->
  ?cost:('st -> Sim.Payload.t -> Sim.Time.span) ->
  ?arg_size:(Sim.Payload.t -> int) ->
  ?res_size:(Sim.Payload.t -> int) ->
  ('st -> Sim.Payload.t -> Sim.Payload.t) ->
  'st opref
(** Defines an operation.  [cost] is the simulated CPU time of the
    operation body (default 5 µs); [arg_size]/[res_size] the marshalled
    byte counts (default 16).  Write operations with [guard] are supported
    on owned objects and on local invocations of replicated objects. *)

val invoke : ?nonblocking:bool -> 'st opref -> Sim.Payload.t -> Sim.Payload.t
(** Invokes an operation from an application thread.  Blocks according to
    Orca semantics; [nonblocking] requests the paper's §6 nonblocking
    broadcast for replicated writes whose result is ignored (falls back to
    blocking when the backend cannot do it). *)

val rank_here : domain -> int
(** The rank whose machine the calling thread runs on. *)

val peek : 'st odesc -> rank:int -> 'st
(** Host-side access to a replica's state for tests and result collection
    after a run; not part of the simulated system and charges nothing. *)

val spawn : domain -> rank:int -> string -> (rank:int -> unit) -> Machine.Thread.t
(** Starts an Orca process (application thread, [Normal] priority). *)

val broadcasts : domain -> int
val remote_invocations : domain -> int
val parked_peak : domain -> int
(** Highest number of simultaneously blocked guarded operations. *)

val parked_total : domain -> int
(** Guarded operations that blocked at least once. *)

val retransmissions : domain -> int
(** Protocol retransmissions summed over the domain's backends — the
    recovery work the stack performed (nonzero only under injected
    faults or genuine congestion loss). *)
