module Thread = Machine.Thread
module Mach = Machine.Mach
module Sync = Machine.Sync

type t = {
  rank : int;
  machine : Machine.Mach.t;
  broadcast : nonblocking:bool -> ?key:int -> size:int -> Sim.Payload.t -> unit;
  set_deliver : (sender:int -> size:int -> Sim.Payload.t -> unit) -> unit;
  rpc : dst:int -> size:int -> Sim.Payload.t -> int * Sim.Payload.t;
  set_rpc_handler :
    (client:int ->
    size:int ->
    Sim.Payload.t ->
    reply:(size:int -> Sim.Payload.t -> unit) ->
    unit) ->
    unit;
  supports_async_reply : bool;
  supports_nonblocking_broadcast : bool;
  retransmissions : unit -> int;
  crash_sequencer : unit -> unit;
  label : string;
}

(* Server threads per machine handling incoming kernel-RPC requests.  A
   blocked guarded operation parks one of them, so there must be enough for
   the worst concurrent-blocked count of the applications. *)
let kernel_server_threads = 8

let kernel_stack ?(rpc_config = Amoeba.Rpc.default_config)
    ?(group_config = Amoeba.Group.default_config) flips ?(sequencer = 0) () =
  let n = Array.length flips in
  let rpcs = Array.map (fun flip -> Amoeba.Rpc.create ~config:rpc_config flip) flips in
  let ports = Array.map (fun rpc -> Amoeba.Rpc.export rpc ~name:"orca") rpcs in
  let port_addrs = Array.map Amoeba.Rpc.address ports in
  let rank_of_client = Hashtbl.create n in
  Array.iteri (fun i rpc -> Hashtbl.replace rank_of_client (Amoeba.Rpc.client_address rpc) i) rpcs;
  let grp, members = Amoeba.Group.create_static ~config:group_config ~name:"orca" ~sequencer flips in
  Array.init n (fun i ->
      let mach = Flip.Flip_iface.machine flips.(i) in
      let deliver = ref (fun ~sender:_ ~size:_ _ -> ()) in
      let handler = ref (fun ~client:_ ~size:_ _ ~reply -> reply ~size:0 Sim.Payload.Empty) in
      (* The Panda-wrapper group daemon: receives ordered messages and makes
         the upcall the RTS expects. *)
      ignore
        (Thread.spawn mach ~prio:Thread.Daemon "grp-recv" (fun () ->
             while true do
               let sender, size, payload = Amoeba.Group.receive members.(i) in
               !deliver ~sender ~size payload
             done));
      (* RPC daemons wrapping get_request/put_reply.  Amoeba requires the
         reply to come from the thread that accepted the request, so an
         asynchronous reply must signal this thread back to life — the
         extra context switch the paper measures for guarded operations. *)
      for k = 1 to kernel_server_threads do
        ignore
          (Thread.spawn mach ~prio:Thread.Daemon
             (Printf.sprintf "rpc-srv%d" k)
             (fun () ->
               let mu = Sync.Mutex.create mach in
               let cv = Sync.Condvar.create mach in
               while true do
                 let r = Amoeba.Rpc.get_request ports.(i) in
                 let cell = ref None in
                 let reply ~size payload =
                   Sync.Mutex.lock mu;
                   cell := Some (size, payload);
                   Sync.Condvar.signal cv;
                   Sync.Mutex.unlock mu
                 in
                 let client =
                   match Hashtbl.find_opt rank_of_client (Amoeba.Rpc.request_client r) with
                   | Some rank -> rank
                   | None -> -1
                 in
                 !handler ~client ~size:(Amoeba.Rpc.request_size r) (Amoeba.Rpc.request_payload r) ~reply;
                 Sync.Mutex.lock mu;
                 while !cell = None do
                   Sync.Condvar.wait cv mu
                 done;
                 Sync.Mutex.unlock mu;
                 (match !cell with
                  | Some (size, payload) -> Amoeba.Rpc.put_reply ports.(i) r ~size payload
                  | None -> assert false)
               done))
      done;
      {
        rank = i;
        machine = mach;
        broadcast =
          (fun ~nonblocking ?key:_ ~size payload ->
            (* Amoeba's kernel protocol has no nonblocking variant; adding
               one would require kernel modifications (paper, §6).  The
               kernel sequencer is likewise unsharded, so ordering keys
               carry no information here. *)
            ignore nonblocking;
            Amoeba.Group.send members.(i) ~size payload);
        set_deliver = (fun f -> deliver := f);
        rpc = (fun ~dst ~size payload -> Amoeba.Rpc.trans rpcs.(i) ~dst:port_addrs.(dst) ~size payload);
        set_rpc_handler = (fun h -> handler := h);
        supports_async_reply = false;
        supports_nonblocking_broadcast = false;
        retransmissions =
          (fun () ->
            Amoeba.Rpc.retransmissions rpcs.(i)
            + if i = 0 then Amoeba.Group.retransmissions grp else 0);
        crash_sequencer =
          (fun () ->
            invalid_arg
              "kernel backend: sequencer crash recovery is not modeled \
               (Amoeba's reset protocol is out of scope)");
        label = "kernel";
      })

let user_stack ?label:label_override ?(sys_config = Panda.System_layer.default_config)
    ?(rpc_config = Panda.Rpc.default_config)
    ?(group_config = Panda.Group.default_config) ?(policy = Panda.Seq_policy.Single)
    flips ?(sequencer = 0) ?dedicated_sequencer () =
  let n = Array.length flips in
  let sys =
    Array.mapi
      (fun i flip -> Panda.System_layer.create ~config:sys_config ~name:(Printf.sprintf "orca%d" i) flip)
      flips
  in
  let rpcs = Array.map (fun s -> Panda.Rpc.create ~config:rpc_config s) sys in
  let addrs = Array.map Panda.Rpc.address rpcs in
  let rank_of_addr = Hashtbl.create n in
  Array.iteri (fun i a -> Hashtbl.replace rank_of_addr a i) addrs;
  let placement, label =
    match dedicated_sequencer with
    | Some flip ->
      ( Panda.Group.Dedicated (Panda.System_layer.create ~config:sys_config ~name:"orca-seq" flip),
        "user-dedicated" )
    | None -> (Panda.Group.On_member sequencer, "user")
  in
  let label = Option.value label_override ~default:label in
  let grp, members =
    Panda.Group.create_static ~config:group_config ~policy ~name:"orca"
      ~sequencer:placement sys
  in
  Array.init n (fun i ->
      let mach = Panda.System_layer.machine sys.(i) in
      {
        rank = i;
        machine = mach;
        broadcast =
          (fun ~nonblocking ?(key = 0) ~size payload ->
            if nonblocking then Panda.Group.send_nonblocking ~key members.(i) ~size payload
            else Panda.Group.send ~key members.(i) ~size payload);
        set_deliver =
          (fun f ->
            Panda.Group.set_handler members.(i) (fun ~sender ~size payload ->
                f ~sender ~size payload));
        rpc = (fun ~dst ~size payload -> Panda.Rpc.trans rpcs.(i) ~dst:addrs.(dst) ~size payload);
        set_rpc_handler =
          (fun h ->
            Panda.Rpc.set_request_handler rpcs.(i) (fun ~client ~size payload ~reply ->
                let client =
                  match Hashtbl.find_opt rank_of_addr client with
                  | Some rank -> rank
                  | None -> -1
                in
                h ~client ~size payload ~reply));
        supports_async_reply = true;
        supports_nonblocking_broadcast = true;
        retransmissions =
          (fun () ->
            Panda.Rpc.retransmissions rpcs.(i)
            + if i = 0 then Panda.Group.retransmissions grp else 0);
        crash_sequencer =
          (fun () -> if i = 0 then Panda.Group.crash_sequencer grp);
        label;
      })
