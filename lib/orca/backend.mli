(** Communication backends for the Orca runtime system.

    The paper's two Panda implementations, packaged behind one interface:

    - {!kernel_stack}: Amoeba's kernel-space RPC and group protocols,
      wrapped to look like Panda.  Wrapping must work around Amoeba's
      restriction that a reply be sent by the thread that accepted the
      request: a guarded operation that blocks parks the {e server thread}
      on a condition variable, and the thread that later satisfies the
      guard pays a kernel signal and an extra context switch.
    - {!user_stack}: Panda's user-space protocols over FLIP.  [pan_rpc_reply]
      is asynchronous, so a blocked guarded operation consumes no server
      thread and its reply is sent directly by the thread that satisfies
      the guard (the continuation optimisation).  Optionally runs the group
      sequencer on a dedicated machine, and supports the nonblocking
      broadcast extension. *)

type t = {
  rank : int;
  machine : Machine.Mach.t;
  broadcast : nonblocking:bool -> ?key:int -> size:int -> Sim.Payload.t -> unit;
      (** totally-ordered broadcast to all ranks (including self); when
          [nonblocking] is unsupported the call degrades to blocking.
          [key] (default 0) picks the ordering shard under a sharded
          sequencer policy ({!Panda.Seq_policy.Sharded}); other policies —
          and the kernel stack — ignore it *)
  set_deliver : (sender:int -> size:int -> Sim.Payload.t -> unit) -> unit;
      (** handler for ordered deliveries; runs in a daemon-thread context *)
  rpc : dst:int -> size:int -> Sim.Payload.t -> int * Sim.Payload.t;
      (** blocking remote invocation of rank [dst]'s request handler *)
  set_rpc_handler :
    (client:int ->
    size:int ->
    Sim.Payload.t ->
    reply:(size:int -> Sim.Payload.t -> unit) ->
    unit) ->
    unit;
      (** install the request handler; [reply] must be called exactly once,
          possibly later and — depending on the backend — possibly from a
          different thread *)
  supports_async_reply : bool;
  supports_nonblocking_broadcast : bool;
  retransmissions : unit -> int;
      (** protocol retransmissions attributable to this backend so far;
          summing over all ranks gives the stack total (the group
          protocol's counter is carried by rank 0 alone, since the
          sequencer's retransmissions belong to no one rank) *)
  crash_sequencer : unit -> unit;
      (** kills the group sequencer mid-run so failover can be observed
          (only meaningful on rank 0, a no-op elsewhere; user stack only).
          @raise Invalid_argument on the kernel stack or under the
          [Single] policy — neither models sequencer recovery *)
  label : string;
}

val kernel_stack :
  ?rpc_config:Amoeba.Rpc.config ->
  ?group_config:Amoeba.Group.config ->
  Flip.Flip_iface.t array ->
  ?sequencer:int ->
  unit ->
  t array
(** One backend per FLIP instance.  [sequencer] (default 0) picks the rank
    whose kernel hosts the group sequencer. *)

val user_stack :
  ?label:string ->
  ?sys_config:Panda.System_layer.config ->
  ?rpc_config:Panda.Rpc.config ->
  ?group_config:Panda.Group.config ->
  ?policy:Panda.Seq_policy.t ->
  Flip.Flip_iface.t array ->
  ?sequencer:int ->
  ?dedicated_sequencer:Flip.Flip_iface.t ->
  unit ->
  t array
(** User-space Panda stack.  With [dedicated_sequencer], the sequencer
    thread runs alone on that extra machine instead of on rank
    [sequencer].  [label] overrides the backend label (default "user" /
    "user-dedicated"), e.g. "optimized" for the optimized-config stack.
    [policy] (default [Single], the paper's exact protocol) selects the
    sequencer capacity policy — see {!Panda.Seq_policy.t}. *)
