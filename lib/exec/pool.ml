type t = {
  n_jobs : int;
  mu : Mutex.t;
  work : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable domains : unit Domain.t list;
}

let recommended () = Domain.recommended_domain_count ()
let jobs t = t.n_jobs

(* Workers block on [work] until a task arrives or the pool closes.
   Tasks are wrapped by the submitter and never raise. *)
let rec worker_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.tasks && not t.closing do
    Condition.wait t.work t.mu
  done;
  match Queue.take_opt t.tasks with
  | None ->
    Mutex.unlock t.mu (* closing *)
  | Some task ->
    Mutex.unlock t.mu;
    task ();
    worker_loop t

let create ~jobs =
  let t =
    {
      n_jobs = max 1 jobs;
      mu = Mutex.create ();
      work = Condition.create ();
      tasks = Queue.create ();
      closing = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (t.n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.closing <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let try_pop t =
  Mutex.lock t.mu;
  let r = Queue.take_opt t.tasks in
  Mutex.unlock t.mu;
  r

let map_array t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.n_jobs = 1 || n = 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let done_mu = Mutex.create () in
    let done_c = Condition.create () in
    let run_one i =
      let r =
        try Ok (f xs.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mu;
        Condition.signal done_c;
        Mutex.unlock done_mu
      end
    in
    Mutex.lock t.mu;
    for i = 0 to n - 1 do
      Queue.add (fun () -> run_one i) t.tasks
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    (* The caller is one of the pool's workers while it waits.  It may
       execute tasks from overlapping maps; that only helps. *)
    let rec help () =
      if Atomic.get remaining > 0 then
        match try_pop t with
        | Some task ->
          task ();
          help ()
        | None ->
          Mutex.lock done_mu;
          while Atomic.get remaining > 0 do
            Condition.wait done_c done_mu
          done;
          Mutex.unlock done_mu
    in
    help ();
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
