(** A fixed-size domain pool with a shared work queue.

    Built on the stdlib only ([Domain], [Mutex], [Condition]): the repo
    vendors no external parallelism library.  A pool of [jobs] workers
    executes submitted thunks; the caller participates in draining the
    queue while it waits, so a pool of size [j] uses at most [j] domains
    including the caller's.

    Determinism contract: [map_array]/[map_list] return results in input
    order, regardless of which domain executed which item and in what
    order they finished.  Jobs must be independent (they may not share
    mutable state); each simulation engine is confined to the single
    domain that happens to run its job. *)

type t

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]: the default for [-j]. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains (the caller
    is the remaining worker).  [jobs <= 1] spawns nothing: every map runs
    sequentially in the calling domain, preserving the exact single-core
    code path. *)

val jobs : t -> int

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs] applies [f] to every element, possibly in
    parallel, and returns the results in input order.  If any [f x]
    raises, the first raising item's exception (by input index) is
    re-raised in the caller after all items have settled. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val shutdown : t -> unit
(** Joins the worker domains.  The pool must be idle.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'b) -> 'b
(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on
    exit (normal or exceptional). *)
