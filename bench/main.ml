(* The benchmark harness: regenerates every table and in-text measurement
   of the paper's evaluation, plus this reproduction's own ablations.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1       -- one artifact
     dune exec bench/main.exe -- table3 quick -- Table 3 at P in {1,8} only
     dune exec bench/main.exe -- table3 -j 4  -- fan cells out over 4 domains
     dune exec bench/main.exe -- table1 json  -- also write BENCH_results.json

   `-j N` runs the independent simulations of each artifact on a pool of
   N domains (default: the host's recommended domain count; `-j 1` is the
   sequential path).  Every simulation is deterministic and confined to
   one domain, so the printed tables are bit-identical for every N.
   `--lanes` additionally shards each multi-segment cluster's engine into
   conservative per-segment event lanes — also bit-identical.  The
   `engine` artifact benchmarks the scheduler itself (pure event churn,
   the timer-cancel pattern with the timing wheel on vs off, and the
   laned window/merge machinery).

   A Bechamel group (one Test.make per table, plus event-heap
   microbenchmarks) measures the host-side cost of regenerating each
   artifact; run it with `bechamel`. *)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Paper values for side-by-side printing. *)
let paper_table1 =
  [
    (0, (0.53, 0.62, 1.56, 1.27, 1.67, 1.44));
    (1024, (1.50, 1.58, 2.53, 2.23, 3.59, 3.38));
    (2048, (2.50, 2.55, 3.60, 3.40, 3.67, 3.44));
    (3072, (3.72, 3.74, 4.77, 4.48, 4.84, 4.56));
    (4096, (4.18, 4.23, 5.27, 5.06, 5.35, 5.25));
  ]

let paper_table3 =
  (* app -> impl -> [P1; P8; P16; P32] *)
  [
    ("tsp", [ ("kernel", [ 790.; 87.; 44.; 23. ]); ("user", [ 783.; 92.; 46.; 24. ]) ]);
    ("asp", [ ("kernel", [ 213.; 30.; 17.; 11. ]); ("user", [ 216.; 31.; 18.; 11. ]) ]);
    ("ab", [ ("kernel", [ 565.; 106.; 78.; 60. ]); ("user", [ 567.; 106.; 78.; 59. ]) ]);
    ("rl", [ ("kernel", [ 759.; 132.; 115.; 114. ]); ("user", [ 767.; 133.; 119.; 108. ]) ]);
    ("sor", [ ("kernel", [ 118.; 20.; 14.; 13. ]); ("user", [ 118.; 19.; 13.; 11. ]) ]);
    ( "leq",
      [
        ("kernel", [ 521.; 102.; 91.; 127. ]);
        ("user", [ 527.; 113.; 112.; 164. ]);
        ("user-dedicated", [ 527.; 116.; 94.; 128. ]);
      ] );
  ]

let print_table1 ?pool ?faults ~net () =
  hr
    "Table 1: communication latencies [ms] (paper values in parentheses; \
     optimized columns are this reproduction's own)";
  Printf.printf
    "%6s  %-14s %-14s %-14s %-14s %-14s %-14s %-9s %-9s\n"
    "size" "unicast/user" "mcast/user" "RPC/user" "RPC/kernel" "group/user"
    "group/kernel" "RPC/opt" "group/opt";
  let profile = Core.Experiments.(with_net net default_profile) in
  let rows = Core.Experiments.table1 ?pool ?faults ~profile () in
  List.iter2
    (fun r (_, (pu, pm, pru, prk, pgu, pgk)) ->
      Printf.printf
        "%6d  %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f     %5.2f\n"
        r.Core.Experiments.lr_size r.Core.Experiments.lr_unicast pu
        r.Core.Experiments.lr_multicast pm r.Core.Experiments.lr_rpc_user pru
        r.Core.Experiments.lr_rpc_kernel prk r.Core.Experiments.lr_grp_user pgu
        r.Core.Experiments.lr_grp_kernel pgk r.Core.Experiments.lr_rpc_opt
        r.Core.Experiments.lr_grp_opt)
    rows paper_table1

let print_table2 ?pool ?faults ~net () =
  hr
    "Table 2: communication throughputs [KB/s] (paper values in parentheses; \
     optimized column is this reproduction's own)";
  let profile = Core.Experiments.(with_net net default_profile) in
  let paper = [ ("RPC", (825., 897.)); ("group", (941., 941.)) ] in
  List.iter2
    (fun r (_, (pu, pk)) ->
      Printf.printf
        "%-6s  user %5.0f (%4.0f)   kernel %5.0f (%4.0f)   optimized %5.0f\n"
        r.Core.Experiments.tr_proto r.Core.Experiments.tr_user pu
        r.Core.Experiments.tr_kernel pk r.Core.Experiments.tr_opt)
    (Core.Experiments.table2 ?pool ?faults ~profile ())
    paper

let paper_time app impl procs =
  match List.assoc_opt app paper_table3 with
  | None -> None
  | Some impls -> (
      match List.assoc_opt impl impls with
      | None -> None
      | Some times -> (
          match List.assoc_opt procs [ (1, 0); (8, 1); (16, 2); (32, 3) ] with
          | Some idx -> List.nth_opt times idx
          | None -> None))

let print_table3 ?pool ?faults ?checked ~net ?(procs = [ 1; 8; 16; 32 ]) () =
  hr "Table 3: Orca application runtimes [s] (paper values in parentheses)";
  Printf.printf "%-4s %-15s" "app" "implementation";
  List.iter (fun p -> Printf.printf "  %12s" (Printf.sprintf "P=%d" p)) procs;
  Printf.printf "  %8s\n" "speedup";
  let outcomes = Core.Experiments.table3 ?pool ?faults ?checked ~net ~procs () in
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun o ->
      Hashtbl.replace by_key
        (o.Core.Runner.o_app, Core.Cluster.impl_label o.Core.Runner.o_impl, o.Core.Runner.o_procs)
        o)
    outcomes;
  let any_invalid = ref false in
  List.iter
    (fun (app, impls) ->
      (* The optimized user-space stack has no paper column — it is this
         reproduction's own extension — but its rows print alongside. *)
      let impls = impls @ [ ("optimized", []) ] in
      List.iter
        (fun (impl, _) ->
          let times =
            List.filter_map (fun p -> Hashtbl.find_opt by_key (app, impl, p)) procs
          in
          if times <> [] then begin
            Printf.printf "%-4s %-15s" app impl;
            List.iter
              (fun o ->
                if not o.Core.Runner.o_valid then any_invalid := true;
                match paper_time app impl o.Core.Runner.o_procs with
                | Some pt ->
                  Printf.printf "  %6.1f (%4.0f)" o.Core.Runner.o_seconds pt
                | None -> Printf.printf "  %6.1f       " o.Core.Runner.o_seconds)
              times;
            (match (times, List.rev times) with
             | first :: _, last :: _ when List.length times > 1 ->
               Printf.printf "  %8.1f"
                 (first.Core.Runner.o_seconds /. last.Core.Runner.o_seconds)
             | _ -> ());
            Printf.printf "\n"
          end)
        impls)
    paper_table3;
  if !any_invalid then
    Printf.printf "WARNING: some runs produced checksums differing from the sequential reference!\n"
  else
    Printf.printf "(all runs validated against host-side sequential results)\n"

let print_breakdown ?pool () =
  let rpc_analytic = Core.Experiments.rpc_breakdown ?pool () in
  let grp_analytic = Core.Experiments.group_breakdown ?pool () in
  hr "RPC null-latency gap breakdown [us] (paper, Sec. 4.2)";
  let paper =
    [
      ("total user-kernel gap", 300.);
      ("context switches", 140.);
      ("register-window traps", 50.);
      ("double fragmentation", 40.);
      ("header size difference", 16.);
      ("untuned user-level FLIP interface", 54.);
    ]
  in
  List.iter2
    (fun (label, v) (_, pv) -> Printf.printf "  %-36s %6.0f (paper ~%3.0f)\n" label v pv)
    rpc_analytic paper;
  hr "Group breakdown [us]: total gap + user-path mechanism costs (paper, Sec. 4.3)";
  let paper =
    [
      ("total user-kernel gap", 230.);
      ("context switches", 110.);
      ("register-window traps", 50.);
      ("double fragmentation", 20.);
      ("header size difference", -24.);
      ("untuned user-level FLIP interface", 30.);
    ]
  in
  List.iter2
    (fun (label, v) (_, pv) ->
      Printf.printf "  %-48s %6.0f (paper's differential ~%4.0f)\n" label v pv)
    grp_analytic paper;
  hr "Measured accounting from the cost ledger [us/round] (Sec. 4.2/4.3 re-derived)";
  let rpc_measured, grp_measured = Core.Experiments.measured_breakdown ?pool () in
  let print_side analytic rows =
    List.iter
      (fun (label, v) ->
        match List.assoc_opt label analytic with
        | Some a -> Printf.printf "  %-48s %6.1f (analytic %6.1f)\n" label v a
        | None -> Printf.printf "  %-48s %6.1f\n" label v)
      rows
  in
  Printf.printf "RPC (user-kernel ledger deltas):\n";
  print_side rpc_analytic rpc_measured;
  Printf.printf "group (user path; total and header rows are deltas):\n";
  print_side grp_analytic grp_measured

(* The optimized user-space stack's differential: which (layer, cause)
   ledger cells each of the four optimizations removed, with the residual
   (savings owned by no mechanism) required to be zero. *)
let print_optimized ?pool () =
  hr "Optimized user-space stack: null-latency differential vs. baseline";
  let rpc_o, grp_o = Core.Experiments.optimized_breakdown ?pool () in
  Format.printf "@[<v>optimized rpc:@,%a@]@." Core.Experiments.pp_opt_breakdown
    rpc_o;
  Format.printf "@[<v>optimized group:@,%a@]@."
    Core.Experiments.pp_opt_breakdown grp_o

let print_fault_sweep ?pool ?(quick = false) ?seed ~net () =
  hr "Fault sweep: degradation and conformance vs. frame-loss rate";
  let rates = if quick then [ 0.; 0.01 ] else [ 0.; 0.001; 0.01; 0.05 ] in
  let rows = Core.Experiments.fault_sweep ?pool ~net ~rates ?seed () in
  List.iter (fun r -> Format.printf "  %a@." Core.Experiments.pp_fault_row r) rows;
  if
    List.exists
      (fun r -> r.Core.Experiments.fw_violations > 0 || not r.Core.Experiments.fw_valid)
      rows
  then Printf.printf "WARNING: invariant violations or invalid results under faults!\n"
  else Printf.printf "(all rates: zero invariant violations, results match fault-free)\n"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Load sweeps: throughput-latency curves per stack plus the
   sequencer-saturation scaling; the measured points also feed a "load"
   section of the json report.  Quick mode is the CI smoke: one stack,
   short ramp, no sequencer experiment. *)

let load_json : string option ref = ref None

let print_load ?pool ?faults ?(quick = false) ~net () =
  hr "Load: throughput-latency curves (null RPC, open loop)";
  let impls =
    if quick then [ Core.Cluster.User_optimized ] else Core.Experiments.load_impls
  in
  let window = Sim.Time.us_f (if quick then 0.3e6 else 1e6) in
  let warmup = Sim.Time.ms (if quick then 100 else 250) in
  let config = { Load.Clients.default with Load.Clients.window; warmup } in
  let rates =
    if quick then [ 400.; 1200.; 2000. ] else Core.Experiments.load_rates
  in
  let checked = faults <> None in
  let np = net.Core.Params.np_name in
  let curves =
    Core.Experiments.load_sweep ?pool ?faults ~checked ~net ~config ~rates
      ~impls ()
  in
  List.iter
    (fun (_, curve) -> Format.printf "%a@.@." Load.Sweep.pp_curve curve)
    curves;
  let saturation =
    begin
      (* Quick mode keeps a 2-point sweep on the one quick stack so the CI
         smoke still exercises — and the json still records — the
         sequencer-scaling pipeline. *)
      hr
        (if quick then
           "Load: sequencer saturation (quick: 2-point sweep, 8 nodes)"
         else "Load: sequencer saturation (closed-loop group senders, 8 nodes)");
      let rows =
        if quick then
          Core.Experiments.sequencer_saturation ?pool ?faults ~checked ~net
            ~config ~senders:[ 1; 2 ] ~impls ()
        else
          Core.Experiments.sequencer_saturation ?pool ?faults ~checked ~net
            ~config ()
      in
      List.iter
        (fun (_, points) ->
          List.iter
            (fun row -> Format.printf "  %a@." Core.Experiments.pp_saturation_row row)
            points;
          Format.printf "@.")
        rows;
      rows
    end
  in
  let policy_rows =
    begin
      hr
        (if quick then
           "Load: sequencer policy capacity (quick: 2-point sweep, user stack)"
         else
           "Load: sequencer policy capacity (user stack, policy x senders)");
      let rows =
        if quick then
          Core.Experiments.sequencer_policy_sweep ?pool ?faults ~checked ~net
            ~config ~senders:[ 1; 2 ] ()
        else
          Core.Experiments.sequencer_policy_sweep ?pool ?faults ~checked ~net
            ~config ()
      in
      List.iter
        (fun (policy, points) ->
          List.iter
            (fun row ->
              Format.printf "  %a@." Core.Experiments.pp_policy_row (policy, row))
            points;
          Format.printf "@.")
        rows;
      rows
    end
  in
  let b = Buffer.create 1024 in
  let point m =
    Printf.sprintf
      "{\"offered\": %.1f, \"achieved\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"server_util\": %.4f, \"seq_util\": %.4f, \"violations\": %d}"
      m.Load.Metrics.offered m.Load.Metrics.achieved m.Load.Metrics.p50_ms
      m.Load.Metrics.p95_ms m.Load.Metrics.p99_ms m.Load.Metrics.server_util
      m.Load.Metrics.seq_util m.Load.Metrics.violations
  in
  Buffer.add_string b "{\n    \"rpc_sweep\": [\n";
  List.iteri
    (fun i (_, curve) ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"profile\": \"%s\", \"stack\": \"%s\", \"knee\": %s, \"peak\": %.1f, \"points\": [%s]}%s\n"
           (json_escape np)
           (json_escape curve.Load.Sweep.c_label)
           (match Load.Sweep.knee curve with
            | Load.Sweep.Knee k -> Printf.sprintf "%.1f" k
            | Load.Sweep.Unsaturated -> "\"unsaturated\""
            | Load.Sweep.Saturated -> "null")
           (Load.Sweep.peak curve)
           (String.concat ", " (List.map point curve.Load.Sweep.c_points))
           (if i = List.length curves - 1 then "" else ",")))
    curves;
  let sat_point (s, m) =
    let shards =
      if Array.length m.Load.Metrics.per_shard > 1 then
        Printf.sprintf ", \"per_shard\": [%s]"
          (String.concat ", "
             (Array.to_list (Array.map string_of_int m.Load.Metrics.per_shard)))
      else ""
    in
    Printf.sprintf
      "{\"senders\": %d, \"achieved\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"seq_util\": %.4f, \"violations\": %d%s}"
      s m.Load.Metrics.achieved m.Load.Metrics.p50_ms m.Load.Metrics.p99_ms
      m.Load.Metrics.seq_util m.Load.Metrics.violations shards
  in
  Buffer.add_string b "    ],\n    \"sequencer_saturation\": [\n";
  List.iteri
    (fun i (impl, points) ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"profile\": \"%s\", \"stack\": \"%s\", \"points\": [%s]}%s\n"
           (json_escape np)
           (json_escape (Core.Cluster.impl_label impl))
           (String.concat ", " (List.map sat_point points))
           (if i = List.length saturation - 1 then "" else ",")))
    saturation;
  Buffer.add_string b "    ],\n    \"sequencer_policies\": [\n";
  List.iteri
    (fun i (policy, points) ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"profile\": \"%s\", \"stack\": \"user\", \"policy\": \"%s\", \"points\": [%s]}%s\n"
           (json_escape np)
           (json_escape (Panda.Seq_policy.to_string policy))
           (String.concat ", " (List.map sat_point points))
           (if i = List.length policy_rows - 1 then "" else ",")))
    policy_rows;
  Buffer.add_string b "    ]\n  }";
  load_json := Some (Buffer.contents b)

(* Engine microbenchmarks: the scheduler hot paths in isolation.
   Three shapes: pure event churn (heap path only), the timer-cancel
   pattern that motivates the timing wheel — 200 ms retransmission-style
   timers armed and cancelled long before they fire — run with the wheel
   on and off on the identical schedule, and a laned run that stresses
   the conservative window/merge machinery itself.  Event counts are
   deterministic; only the wall-clock rates vary run to run. *)
let engine_json : string option ref = ref None

let print_engine ?(quick = false) () =
  hr "Engine: scheduler microbenchmarks";
  let scale = if quick then 1 else 5 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let events = f () in
    (events, Unix.gettimeofday () -. t0)
  in
  (* Eight self-rescheduling chains with staggered near-term delays:
     every event is a heap push + pop, no timers, no lanes. *)
  let pure () =
    let n = 200_000 * scale in
    let e = Sim.Engine.create () in
    let left = ref n in
    let rec tick d () =
      if !left > 0 then begin
        decr left;
        ignore (Sim.Engine.after e d (tick d))
      end
    in
    for i = 0 to 7 do
      let d = Sim.Time.us (3 + i) in
      ignore (Sim.Engine.after e d (tick d))
    done;
    Sim.Engine.run e;
    Sim.Engine.events_executed e
  in
  (* Each tick re-arms one of 512 outstanding 200 ms timers — the
     protocol stack's dominant pattern (retransmission timers that are
     nearly always cancelled).  With the wheel the arm and the cancel are
     both O(1) and the timer never reaches the heap. *)
  let timers ~wheel () =
    let n = 100_000 * scale in
    let k = 512 in
    let e = Sim.Engine.create ~wheel () in
    let ring = Array.make k None in
    let left = ref n in
    let i = ref 0 in
    let rec tick () =
      let slot = !i mod k in
      (match ring.(slot) with
       | Some h -> Sim.Engine.cancel e h
       | None -> ());
      ring.(slot) <- Some (Sim.Engine.after e (Sim.Time.ms 200) ignore);
      incr i;
      if !left > 0 then begin
        decr left;
        ignore (Sim.Engine.after e (Sim.Time.us 50) tick)
      end
    in
    ignore (Sim.Engine.after e (Sim.Time.us 50) tick);
    Sim.Engine.run e;
    Sim.Engine.events_executed e
  in
  (* A chain hopping lane to lane at exactly the lookahead horizon, plus
     local filler work: every hop crosses a window boundary, so this
     measures the window scheduling and deterministic merge overhead. *)
  let sharded () =
    let n = 50_000 * scale in
    let e = Sim.Engine.create () in
    let look = Sim.Time.us 100 in
    Sim.Engine.configure_lanes e ~n:4 ~lookahead:look;
    let left = ref n in
    let rec hop lane () =
      if !left > 0 then begin
        decr left;
        ignore (Sim.Engine.after e (Sim.Time.us 10) ignore);
        let next = (lane + 1) mod 4 in
        Sim.Engine.at_lane e ~lane:next (Sim.Engine.now e + look) (hop next)
      end
    in
    ignore (Sim.Engine.after e look (hop 0));
    Sim.Engine.run e;
    (Sim.Engine.events_executed e, Sim.Engine.windows e,
     Sim.Engine.cross_merged e)
  in
  let rate e w = if w > 0. then float_of_int e /. w else 0. in
  let line label events wall =
    Printf.printf "  %-24s %9d events  %8.3f s  %8.2f Mev/s\n" label events
      wall
      (rate events wall /. 1e6)
  in
  let ep, wp = time pure in
  line "pure-scheduler" ep wp;
  let ew, ww = time (timers ~wheel:true) in
  line "timer-cancel (wheel)" ew ww;
  let eh, wh = time (timers ~wheel:false) in
  line "timer-cancel (heap)" eh wh;
  let speedup = if ww > 0. then wh /. ww else 0. in
  Printf.printf "  wheel speedup on the timer-heavy shape: %.2fx\n" speedup;
  let (es, wins, merged), ws = time sharded in
  line "sharded-merge (4 lanes)" es ws;
  Printf.printf "  windows %d, cross-lane merges %d\n" wins merged;
  let obj label events wall extra =
    Printf.sprintf
      "{\"shape\": \"%s\", \"events\": %d, \"wall_seconds\": %.6f, \
       \"events_per_sec\": %.0f%s}"
      label events wall (rate events wall) extra
  in
  engine_json :=
    Some
      (Printf.sprintf
         "{\n    \"shapes\": [\n      %s,\n      %s,\n      %s,\n      %s\n\
         \    ],\n    \"wheel_speedup\": %.3f\n  }"
         (obj "pure-scheduler" ep wp "")
         (obj "timer-cancel-wheel" ew ww "")
         (obj "timer-cancel-heap" eh wh "")
         (obj "sharded-merge" es ws
            (Printf.sprintf ", \"windows\": %d, \"merged\": %d" wins merged))
         speedup)

(* The one-sided crossover artifact: DHT capacity over profile x stack,
   with the ledger partition; also a json section with the profile and
   stack named in every record. *)
let onesided_json : string option ref = ref None

let print_onesided ?pool ?faults ?(quick = false) () =
  hr "One-sided crossover: DHT over all four stacks across network eras";
  let nets =
    if quick then [ Core.Params.net10m; Core.Params.net1g ]
    else Core.Params.net_profiles
  in
  let window = Sim.Time.us_f (if quick then 0.3e6 else 1e6) in
  let warmup = Sim.Time.ms (if quick then 100 else 250) in
  let config =
    {
      Load.Clients.default with
      Load.Clients.clients_per_node = 2;
      window;
      warmup;
    }
  in
  let checked = faults <> None in
  let cells =
    Core.Experiments.onesided_crossover ?pool ?faults ~checked ~nets ~config ()
  in
  List.iter (fun c -> Format.printf "  %a@." Core.Experiments.pp_xcell c) cells;
  Format.printf "@.";
  let summary = Core.Experiments.crossover_summary cells in
  List.iter
    (fun r -> Format.printf "  %a@." Core.Experiments.pp_crossover_row r)
    summary;
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n    \"cells\": [\n";
  List.iteri
    (fun i c ->
      let l = c.Core.Experiments.xc_ledger in
      Buffer.add_string b
        (Printf.sprintf
           "      {\"profile\": \"%s\", \"stack\": \"%s\", \"read_pct\": %d, \
            \"capacity\": %.1f, \"p50_ms\": %.3f, \"server_util\": %.4f, \
            \"server_thread_util\": %.4f, \"wire_util\": %.4f, \
            \"initiator_cpu_ms\": %.3f, \"target_cpu_ms\": %.3f, \
            \"nic_cpu_ms\": %.3f, \"stack_cpu_ms\": %.3f, \"residual_ms\": \
            %.3f, \"violations\": %d}%s\n"
           (json_escape c.Core.Experiments.xc_net)
           (json_escape (Core.Cluster.stack_label c.Core.Experiments.xc_stack))
           c.Core.Experiments.xc_read_pct
           c.Core.Experiments.xc_capacity.Load.Metrics.achieved
           c.Core.Experiments.xc_latency.Load.Metrics.p50_ms
           c.Core.Experiments.xc_capacity.Load.Metrics.server_util
           c.Core.Experiments.xc_capacity.Load.Metrics.server_thread_util
           c.Core.Experiments.xc_wire_util l.Core.Experiments.ol_initiator_ms
           l.Core.Experiments.ol_target_ms l.Core.Experiments.ol_nic_ms
           l.Core.Experiments.ol_stack_ms l.Core.Experiments.ol_residual_ms
           (c.Core.Experiments.xc_dht_violations
           + c.Core.Experiments.xc_latency.Load.Metrics.violations
           + c.Core.Experiments.xc_capacity.Load.Metrics.violations)
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string b "    ],\n    \"crossover\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"profile\": \"%s\", \"read_pct\": %d, \"best_rpc\": \
            \"%s\", \"rpc_capacity\": %.1f, \"onesided_capacity\": %.1f, \
            \"onesided_wins\": %b}%s\n"
           (json_escape r.Core.Experiments.xs_net)
           r.Core.Experiments.xs_read_pct
           (json_escape r.Core.Experiments.xs_best_rpc)
           r.Core.Experiments.xs_rpc_capacity
           r.Core.Experiments.xs_os_capacity r.Core.Experiments.xs_os_wins
           (if i = List.length summary - 1 then "" else ",")))
    summary;
  Buffer.add_string b "    ]\n  }";
  onesided_json := Some (Buffer.contents b);
  if
    List.exists
      (fun c ->
        c.Core.Experiments.xc_dht_violations
        + c.Core.Experiments.xc_latency.Load.Metrics.violations
        + c.Core.Experiments.xc_capacity.Load.Metrics.violations
        > 0)
      cells
  then Printf.printf "WARNING: DHT coherence or invariant violations!\n"
  else Printf.printf "(all cells: zero coherence and invariant violations)\n"

(* The cluster-scale artifact: the sharded Zipf-routed service on
   multi-segment pools swept to its saturation knee, plus the
   ledger-driven migration A/B.  Quick mode is the CI smoke: the 64-node
   grid and the A/B only; full mode adds the 256-node ramp. *)
let cluster_json : string option ref = ref None

let print_cluster ?pool ?faults ?(quick = false) ~net () =
  hr "Cluster scale: sharded Zipf service on multi-segment pools";
  let checked = faults <> None in
  let stacks =
    [
      Core.Cluster.Rpc_stack Core.Cluster.Kernel;
      Core.Cluster.Rpc_stack Core.Cluster.User_optimized;
      Core.Cluster.One_sided;
    ]
  in
  let combos =
    (64, [ 4000. ])
    :: (if quick then [] else [ (256, [ 1000.; 2000.; 4000. ]) ])
  in
  let sweeps =
    List.map
      (fun (nodes, rates) ->
        Core.Experiments.cluster_sweep ?pool ?faults ~checked ~net ~lanes:true
          ~nodes:[ nodes ] ~stacks ~rates ())
      combos
    |> List.concat
  in
  List.iter
    (fun ((n, stack, skew), cells, knee) ->
      Format.printf "  -- %d nodes  %s  %s@." n
        (Core.Cluster.stack_label stack)
        (Load.Keys.skew_label skew);
      List.iter (fun c -> Format.printf "  %a@." Core.Experiments.pp_ccell c) cells;
      Format.printf "     knee: %a@." Core.Experiments.pp_knee knee)
    sweeps;
  hr "Cluster scale: ledger-driven migration vs static placement";
  let static, rebal =
    Core.Experiments.cluster_migration_ab ?pool ?faults ~checked ~net
      ~lanes:true ()
  in
  Format.printf "  static     %a@." Core.Experiments.pp_ccell static;
  Format.printf "  rebalanced %a@." Core.Experiments.pp_ccell rebal;
  let ach c = c.Core.Experiments.cc_metrics.Load.Metrics.achieved in
  let delta = 100. *. (ach rebal -. ach static) /. ach static in
  Format.printf "  migration delta: %+.1f%% (%d migrations)@." delta
    rebal.Core.Experiments.cc_migrations;
  let viol c =
    c.Core.Experiments.cc_service_viol
    + c.Core.Experiments.cc_metrics.Load.Metrics.violations
  in
  let cell_json c =
    Printf.sprintf
      "{\"nodes\": %d, \"stack\": \"%s\", \"skew\": \"%s\", \"offered\": %.1f, \
       \"achieved\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"server_max\": \
       %.4f, \"wire_max\": %.4f, \"cross_frac\": %.4f, \"switch_fps\": %.0f, \
       \"gets\": %d, \"puts\": %d, \"migrations\": %d, \"violations\": %d}"
      c.Core.Experiments.cc_nodes
      (json_escape (Core.Cluster.stack_label c.Core.Experiments.cc_stack))
      (json_escape (Load.Keys.skew_label c.Core.Experiments.cc_skew))
      c.Core.Experiments.cc_metrics.Load.Metrics.offered (ach c)
      c.Core.Experiments.cc_metrics.Load.Metrics.p50_ms
      c.Core.Experiments.cc_metrics.Load.Metrics.p99_ms
      c.Core.Experiments.cc_server_max c.Core.Experiments.cc_wire_max
      c.Core.Experiments.cc_cross_frac c.Core.Experiments.cc_switch_fps
      c.Core.Experiments.cc_gets c.Core.Experiments.cc_puts
      c.Core.Experiments.cc_migrations (viol c)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n    \"sweeps\": [\n";
  List.iteri
    (fun i ((n, stack, skew), cells, knee) ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"nodes\": %d, \"stack\": \"%s\", \"skew\": \"%s\", \
            \"knee\": %s, \"points\": [%s]}%s\n"
           n
           (json_escape (Core.Cluster.stack_label stack))
           (json_escape (Load.Keys.skew_label skew))
           (match knee with
            | Load.Sweep.Knee k -> Printf.sprintf "%.1f" k
            | Load.Sweep.Unsaturated -> "\"unsaturated\""
            | Load.Sweep.Saturated -> "null")
           (String.concat ", " (List.map cell_json cells))
           (if i = List.length sweeps - 1 then "" else ",")))
    sweeps;
  Buffer.add_string b
    (Printf.sprintf
       "    ],\n\
       \    \"migration_ab\": {\"static\": %s, \"rebalanced\": %s, \
        \"delta_pct\": %.1f, \"migration_wins\": %b}\n\
       \  }"
       (cell_json static) (cell_json rebal) delta
       (ach rebal > ach static));
  cluster_json := Some (Buffer.contents b);
  let total =
    List.fold_left
      (fun acc (_, cells, _) ->
        List.fold_left (fun acc c -> acc + viol c) acc cells)
      (viol static + viol rebal)
      sweeps
  in
  if total > 0 then Printf.printf "WARNING: %d service conformance violations!\n" total
  else Printf.printf "(all cells: zero service conformance violations)\n"

(* The scenario artifact: loss x load tail amplification, a short
   checked soak with a mid-run sequencer crash, and the calibration
   round-trip (fitted net constants must equal the pinned era
   bit-exactly).  Quick mode shrinks the grid to the CI smoke. *)
let scenario_json : string option ref = ref None

let print_scenario ?pool ?(quick = false) ~net () =
  hr "Scenario: tail amplification under frame loss";
  let impls =
    if quick then [ Core.Cluster.User ] else Core.Experiments.load_impls
  in
  let losses = if quick then [ 0.01 ] else Core.Experiments.tail_losses in
  let rates = if quick then [ 200. ] else [ 200.; 800. ] in
  let window = Sim.Time.us_f (if quick then 0.5e6 else 1e6) in
  let cells =
    Core.Experiments.tail_grid ?pool ~net
      ~config:{ Load.Clients.default with Load.Clients.window }
      ~losses ~rates ~impls ()
  in
  List.iter (fun c -> Format.printf "  %a@." Core.Experiments.pp_tail_cell c) cells;
  hr "Scenario: checked soak (diurnal ramp, 1% loss, sequencer crash)";
  let soak =
    Scenario.Soak.run
      {
        Scenario.Soak.default with
        Scenario.Soak.sk_rate = 300.;
        sk_windows = (if quick then 4 else 8);
        sk_policy = Panda.Seq_policy.Failover;
        sk_op = Load.Clients.Group;
        sk_net = Some net;
        sk_faults =
          Some (Result.get_ok (Faults.Spec.parse "seed=5,loss=0.01,seqcrash=0.4"));
      }
  in
  Format.printf "  %a@." Scenario.Soak.pp_report soak;
  hr "Scenario: cost-profile calibration round-trip";
  let calib_exact, calib_ref, calib_fit =
    match Scenario.Calibrate.fit (Scenario.Calibrate.measure ~net ()) with
    | Error e ->
      Printf.printf "  fit FAILED: %s\n" e;
      (false, 0., 0.)
    | Ok fitted ->
      let exact =
        fitted.Core.Params.np_segment = net.Core.Params.np_segment
        && fitted.Core.Params.np_nic = net.Core.Params.np_nic
        && fitted.Core.Params.np_switch = net.Core.Params.np_switch
      in
      let ref_ms, fit_ms = Scenario.Calibrate.verify ~reference:net fitted in
      Printf.printf "  %s: constants %s, user null RPC %.3f ms vs %.3f ms\n"
        net.Core.Params.np_name
        (if exact then "recovered bit-exactly" else "MISMATCH")
        ref_ms fit_ms;
      (exact, ref_ms, fit_ms)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n    \"tail_grid\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"impl\": \"%s\", \"loss\": %.4f, \"rate\": %.0f, \
            \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"p999_ms\": %.3f, \"amp99\": \
            %.2f, \"amp999\": %.2f, \"violations\": %d}%s\n"
           (json_escape (Core.Cluster.impl_label c.Core.Experiments.tc_impl))
           c.Core.Experiments.tc_loss c.Core.Experiments.tc_rate
           c.Core.Experiments.tc_metrics.Load.Metrics.p50_ms
           c.Core.Experiments.tc_metrics.Load.Metrics.p99_ms
           c.Core.Experiments.tc_metrics.Load.Metrics.p999_ms
           c.Core.Experiments.tc_amp99 c.Core.Experiments.tc_amp999
           c.Core.Experiments.tc_metrics.Load.Metrics.violations
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string b "    ],\n    \"soak\": {\"windows\": [\n";
  let ws = soak.Scenario.Soak.r_windows in
  List.iteri
    (fun i w ->
      Buffer.add_string b
        (Printf.sprintf
           "      {\"offered\": %.1f, \"achieved\": %.1f, \"p99_ms\": %.3f, \
            \"retrans\": %d, \"kills\": %d}%s\n"
           w.Scenario.Soak.w_offered w.Scenario.Soak.w_achieved
           w.Scenario.Soak.w_p99_ms w.Scenario.Soak.w_retrans
           w.Scenario.Soak.w_kills
           (if i = List.length ws - 1 then "" else ",")))
    ws;
  Buffer.add_string b
    (Printf.sprintf
       "    ], \"issued\": %d, \"completed\": %d, \"p999_ms\": %.3f, \
        \"seq_crashed\": %b, \"violations\": %d},\n"
       soak.Scenario.Soak.r_issued soak.Scenario.Soak.r_completed
       soak.Scenario.Soak.r_p999_ms soak.Scenario.Soak.r_seq_crashed
       soak.Scenario.Soak.r_violations);
  Buffer.add_string b
    (Printf.sprintf
       "    \"calibration\": {\"era\": \"%s\", \"exact\": %b, \
        \"reference_ms\": %.6f, \"fitted_ms\": %.6f}\n  }"
       (json_escape net.Core.Params.np_name)
       calib_exact calib_ref calib_fit);
  scenario_json := Some (Buffer.contents b);
  if soak.Scenario.Soak.r_violations > 0 then
    Printf.printf "WARNING: %d soak conformance violations!\n"
      soak.Scenario.Soak.r_violations
  else Printf.printf "(soak: zero conformance violations)\n"

let print_ablations ?pool () =
  hr "Ablation: dedicated sequencer for LEQ [s]";
  List.iter
    (fun o -> Format.printf "  %a@." Core.Runner.pp_outcome o)
    (Core.Experiments.ablation_dedicated_sequencer ?pool ~procs:[ 8; 16; 32 ] ());
  hr "Ablation: nonblocking broadcast (paper Sec. 6 extension)";
  List.iter
    (fun (label, ms) -> Printf.printf "  %-28s %6.3f ms\n" label ms)
    (Core.Experiments.ablation_nonblocking ?pool ());
  hr "Ablation: adaptive object placement (Sec. 2 runtime heuristic)";
  List.iter
    (fun (label, v) -> Printf.printf "  %-40s %8.1f\n" label v)
    (Core.Experiments.ablation_migration ?pool ());
  hr "Ablation: user-level network access (the paper's Sec. 6 projection)";
  List.iter
    (fun (label, v) -> Printf.printf "  %-42s %6.3f ms\n" label v)
    (Core.Experiments.ablation_user_level_network ?pool ());
  hr "Ablation: continuations vs blocked server threads (RL, P=16)";
  List.iter
    (fun (label, s) -> Printf.printf "  %-40s %6.1f s\n" label s)
    (Core.Experiments.ablation_continuations ?pool ~procs:16 ())

(* ------------------------------------------------------------------ *)
(* Wall-clock accounting, for the json report: per-artifact host
   seconds, simulated events executed (across all pool domains), and the
   high-water mark of pending events (heap + wheel, max over every
   engine's lanes) — a leak in any protocol layer shows up here long
   before it shows up in wall time. *)

type timing = {
  tm_name : string;
  tm_wall : float;
  tm_events : int;
  tm_live_hw : int;
}

let timings : timing list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let e0 = Sim.Engine.events_total () in
  Sim.Engine.reset_live_hw ();
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let events = Sim.Engine.events_total () - e0 in
  timings :=
    {
      tm_name = name;
      tm_wall = wall;
      tm_events = events;
      tm_live_hw = Sim.Engine.live_hw ();
    }
    :: !timings

let write_json ~jobs ~net file =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"host\": {\"os_type\": \"%s\", \"ocaml_version\": \"%s\", \"word_size\": %d, \"recommended_domains\": %d},\n"
       (json_escape Sys.os_type) (json_escape Sys.ocaml_version) Sys.word_size
       (Exec.Pool.recommended ()));
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"profile\": \"%s\",\n"
       (json_escape net.Core.Params.np_name));
  (match !load_json with
   | Some section -> Buffer.add_string b (Printf.sprintf "  \"load\": %s,\n" section)
   | None -> ());
  (match !onesided_json with
   | Some section ->
     Buffer.add_string b (Printf.sprintf "  \"onesided\": %s,\n" section)
   | None -> ());
  (match !cluster_json with
   | Some section ->
     Buffer.add_string b (Printf.sprintf "  \"cluster\": %s,\n" section)
   | None -> ());
  (match !engine_json with
   | Some section ->
     Buffer.add_string b (Printf.sprintf "  \"engine\": %s,\n" section)
   | None -> ());
  (match !scenario_json with
   | Some section ->
     Buffer.add_string b (Printf.sprintf "  \"scenario\": %s,\n" section)
   | None -> ());
  Buffer.add_string b "  \"artifacts\": [\n";
  let rows = List.rev !timings in
  List.iteri
    (fun i t ->
      let eps = if t.tm_wall > 0. then float_of_int t.tm_events /. t.tm_wall else 0. in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"wall_seconds\": %.6f, \"sim_events\": %d, \"events_per_sec\": %.0f, \"live_hw\": %d}%s\n"
           (json_escape t.tm_name) t.tm_wall t.tm_events eps t.tm_live_hw
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s (%d artifacts, -j %d)\n" file (List.length rows) jobs

(* ------------------------------------------------------------------ *)
(* Bechamel: host-side cost of regenerating each artifact, and
   microbenchmarks of the event-heap hot path. *)

let bechamel_tests () =
  let open Bechamel in
  let t1 =
    Test.make ~name:"table1"
      (Staged.stage (fun () -> ignore (Core.Experiments.table1 ())))
  in
  let t2 =
    Test.make ~name:"table2"
      (Staged.stage (fun () -> ignore (Core.Experiments.table2 ())))
  in
  let t3 =
    Test.make ~name:"table3-tsp-P4"
      (Staged.stage (fun () ->
           ignore
             (Core.Runner.run ~impl:Core.Cluster.User ~procs:4
                (Core.Runner.app_named "tsp"))))
  in
  let tb =
    Test.make ~name:"breakdown-rpc"
      (Staged.stage (fun () -> ignore (Core.Experiments.rpc_breakdown ())))
  in
  (* Event-heap hot paths: 1k push/pop (the engine's steady state), 1k
     push/cancel/drain (timer churn, exercises lazy deletion and
     compaction). *)
  let n = 1024 in
  let theap =
    let h = Sim.Heap.create ~dummy:0 ~capacity:(2 * n) () in
    Test.make ~name:"heap-push-pop-1k"
      (Staged.stage (fun () ->
           for i = 0 to n - 1 do
             ignore (Sim.Heap.push h ~time:(i * 7 mod 97) i)
           done;
           while not (Sim.Heap.is_empty h) do
             ignore (Sim.Heap.pop_min_exn h)
           done))
  in
  let tcancel =
    let h = Sim.Heap.create ~dummy:0 ~capacity:(2 * n) () in
    let handles = Array.make n None in
    Test.make ~name:"heap-push-cancel-1k"
      (Staged.stage (fun () ->
           for i = 0 to n - 1 do
             handles.(i) <- Some (Sim.Heap.push h ~time:(i * 7 mod 97) i)
           done;
           Array.iteri
             (fun i h' -> match h' with
                | Some hd -> if i land 1 = 0 then Sim.Heap.cancel h hd
                | None -> ())
             handles;
           while not (Sim.Heap.is_empty h) do
             ignore (Sim.Heap.pop_min_exn h)
           done))
  in
  let tengine =
    Test.make ~name:"engine-timer-wheel-1k"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           for i = 1 to n do
             ignore (Sim.Engine.at e i ignore)
           done;
           Sim.Engine.run e))
  in
  Test.make_grouped ~name:"repro" [ t1; t2; t3; tb; theap; tcancel; tengine ]

(* Steady-state allocation per heap event: with the unboxed slot arrays
   there is no per-push handle or option box, so this prints ~0. *)
let report_heap_words () =
  let n = 100_000 in
  let h = Sim.Heap.create ~dummy:0 ~capacity:(2 * n) () in
  let measure () =
    let w0 = Gc.allocated_bytes () in
    for i = 0 to n - 1 do
      ignore (Sim.Heap.push h ~time:(i * 31 mod 1009) i)
    done;
    while not (Sim.Heap.is_empty h) do
      ignore (Sim.Heap.pop_min_exn h)
    done;
    (Gc.allocated_bytes () -. w0) /. 8.
  in
  ignore (measure ());
  (* warm: arrays at capacity *)
  let words = measure () in
  Printf.printf "  heap words/event (steady-state push+pop): %.3f\n"
    (words /. float_of_int n)

let run_bechamel () =
  hr "Bechamel: host cost of regenerating each artifact";
  let open Bechamel in
  let open Toolkit in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 3.0) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-24s %10.3f ms/run\n" name (est /. 1e6)
      | Some [] | None -> Printf.printf "  %-24s (no estimate)\n" name)
    results;
  report_heap_words ()

(* Observability options, recognised anywhere on the command line and
   stripped before artifact selection:
     --obs-log      turn on the simulator's timestamped event log
     --trace FILE   write a Chrome trace_event JSON of a user-space null
                    RPC run (load in chrome://tracing or Perfetto)
     --obs          dump the same run's ledger and statistics as CSV *)
let rec strip_obs = function
  | [] -> ([], [])
  | [ "--trace" ] ->
    prerr_endline "--trace needs a FILE argument";
    exit 2
  | "--trace" :: file :: rest ->
    let obs, sel = strip_obs rest in
    (`Trace file :: obs, sel)
  | "--obs" :: rest ->
    let obs, sel = strip_obs rest in
    (`Obs :: obs, sel)
  | "--obs-log" :: rest ->
    let obs, sel = strip_obs rest in
    (`Log :: obs, sel)
  | a :: rest ->
    let obs, sel = strip_obs rest in
    (obs, a :: sel)

(* `--faults SPEC` anywhere on the command line installs that fault
   schedule on every table's cells (see Faults.Spec for the grammar). *)
let rec strip_faults = function
  | [] -> (None, [])
  | [ "--faults" ] ->
    prerr_endline "--faults needs a SPEC argument";
    exit 2
  | "--faults" :: spec :: rest -> (
      let faults, sel = strip_faults rest in
      match Faults.Spec.parse spec with
      | Ok f -> ((match faults with Some _ -> faults | None -> Some f), sel)
      | Error msg ->
        Printf.eprintf "--faults: %s\n" msg;
        exit 2)
  | a :: rest ->
    let faults, sel = strip_faults rest in
    (faults, a :: sel)

(* `--profile ERA` anywhere on the command line picks the network era the
   clusters are built on (default: the paper's 10 Mbit/s Ethernet).  The
   crossover artifact sweeps eras regardless. *)
let rec strip_profile = function
  | [] -> (None, [])
  | [ "--profile" ] ->
    prerr_endline "--profile needs an ERA argument";
    exit 2
  | "--profile" :: name :: rest -> (
      let net, sel = strip_profile rest in
      match Core.Params.net_profile_of_string name with
      | Some p -> ((match net with Some _ -> net | None -> Some p), sel)
      | None ->
        Printf.eprintf "--profile: unknown network era %S (expected %s)\n" name
          (String.concat " | "
             (List.map (fun p -> p.Core.Params.np_name) Core.Params.net_profiles));
        exit 2)
  | a :: rest ->
    let net, sel = strip_profile rest in
    (net, a :: sel)

(* `--lanes` anywhere on the command line shards every multi-segment
   cluster into conservative per-segment engine lanes (see DESIGN.md);
   laned results are bit-identical at every -j, and match the unlaned
   engine except for the tie-break order of same-instant cross-segment
   arrivals (the cluster artifact pins its goldens with lanes on). *)
let rec strip_lanes = function
  | [] -> (false, [])
  | "--lanes" :: rest ->
    let _, sel = strip_lanes rest in
    (true, sel)
  | a :: rest ->
    let l, sel = strip_lanes rest in
    (l, a :: sel)

(* `-j N` anywhere on the command line sets the pool size. *)
let rec strip_jobs = function
  | [] -> (None, [])
  | [ "-j" ] ->
    prerr_endline "-j needs a domain count";
    exit 2
  | "-j" :: n :: rest -> (
      let jobs, sel = strip_jobs rest in
      match int_of_string_opt n with
      | Some j when j >= 1 -> ((match jobs with Some _ -> jobs | None -> Some j), sel)
      | _ ->
        Printf.eprintf "-j: bad domain count %S\n" n;
        exit 2)
  | a :: rest ->
    let jobs, sel = strip_jobs rest in
    (jobs, a :: sel)

let run_obs = function
  | `Log -> ()
  | `Trace file -> (
    let r, _busy = Core.Experiments.recorded_rpc () in
    try
      Obs.Export.to_file file (Obs.Export.chrome_trace r);
      Printf.printf
        "wrote Chrome trace of a user-space null RPC run to %s (%d spans)\n" file
        (Obs.Recorder.n_spans r)
    with Sys_error msg ->
      Printf.eprintf "cannot write trace: %s\n" msg;
      exit 1)
  | `Obs ->
    let r, _busy = Core.Experiments.recorded_rpc () in
    print_string (Obs.Export.csv r)

let () =
  let obs_opts, args = strip_obs (List.tl (Array.to_list Sys.argv)) in
  let jobs_opt, args = strip_jobs args in
  let faults, args = strip_faults args in
  let lanes, args = strip_lanes args in
  if lanes then Core.Cluster.set_default_lanes true;
  let net_opt, args = strip_profile args in
  let net = match net_opt with Some p -> p | None -> Core.Params.net10m in
  if List.mem `Log obs_opts then Obs.Log.set_enabled true;
  let jobs = match jobs_opt with Some j -> j | None -> Exec.Pool.recommended () in
  let json = List.mem "json" args in
  let selected = List.filter (fun a -> a <> "quick" && a <> "json") args in
  let everything = selected = [] && obs_opts = [] in
  let quick = List.mem "quick" args in
  let procs = if quick then [ 1; 8 ] else [ 1; 8; 16; 32 ] in
  let wants name = everything || List.mem name selected in
  let with_pool f =
    if jobs <= 1 then f ?pool:None ()
    else Exec.Pool.with_pool ~jobs (fun p -> f ?pool:(Some p) ())
  in
  if wants "table1" then
    timed "table1" (fun () ->
        with_pool (fun ?pool () -> print_table1 ?pool ?faults ~net ()));
  if wants "table2" then
    timed "table2" (fun () ->
        with_pool (fun ?pool () -> print_table2 ?pool ?faults ~net ()));
  if wants "breakdown" then timed "breakdown" (fun () -> with_pool print_breakdown);
  if wants "optimized" then timed "optimized" (fun () -> with_pool print_optimized);
  if wants "table3" then
    timed
      (if quick then "table3-quick" else "table3")
      (fun () ->
        with_pool (fun ?pool () ->
            (* An explicit fault schedule also turns the checkers on. *)
            print_table3 ?pool ?faults ?checked:(Option.map (fun _ -> true) faults)
              ~net ~procs ()));
  if wants "faults" then
    timed
      (if quick then "faults-quick" else "faults")
      (fun () ->
        with_pool (fun ?pool () ->
            print_fault_sweep ?pool ~quick
              ?seed:(Option.map (fun f -> f.Faults.Spec.seed) faults) ~net ()));
  if wants "load" then
    timed
      (if quick then "load-quick" else "load")
      (fun () ->
        with_pool (fun ?pool () -> print_load ?pool ?faults ~quick ~net ()));
  if wants "onesided" then
    timed
      (if quick then "onesided-quick" else "onesided")
      (fun () ->
        with_pool (fun ?pool () -> print_onesided ?pool ?faults ~quick ()));
  if wants "cluster" then
    timed
      (if quick then "cluster-quick" else "cluster")
      (fun () ->
        with_pool (fun ?pool () -> print_cluster ?pool ?faults ~quick ~net ()));
  if wants "scenario" then
    timed
      (if quick then "scenario-quick" else "scenario")
      (fun () ->
        with_pool (fun ?pool () -> print_scenario ?pool ~quick ~net ()));
  if wants "ablation" then timed "ablation" (fun () -> with_pool print_ablations);
  if wants "engine" then
    timed
      (if quick then "engine-quick" else "engine")
      (fun () -> print_engine ~quick ());
  if List.mem "bechamel" selected || everything then run_bechamel ();
  List.iter run_obs obs_opts;
  if json then write_json ~jobs ~net "BENCH_results.json"
