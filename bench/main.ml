(* The benchmark harness: regenerates every table and in-text measurement
   of the paper's evaluation, plus this reproduction's own ablations.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1       -- one artifact
     dune exec bench/main.exe -- table3 quick -- Table 3 at P in {1,8} only

   A Bechamel group (one Test.make per table) measures the host-side cost
   of regenerating each artifact; run it with `bechamel`. *)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Paper values for side-by-side printing. *)
let paper_table1 =
  [
    (0, (0.53, 0.62, 1.56, 1.27, 1.67, 1.44));
    (1024, (1.50, 1.58, 2.53, 2.23, 3.59, 3.38));
    (2048, (2.50, 2.55, 3.60, 3.40, 3.67, 3.44));
    (3072, (3.72, 3.74, 4.77, 4.48, 4.84, 4.56));
    (4096, (4.18, 4.23, 5.27, 5.06, 5.35, 5.25));
  ]

let paper_table3 =
  (* app -> impl -> [P1; P8; P16; P32] *)
  [
    ("tsp", [ ("kernel", [ 790.; 87.; 44.; 23. ]); ("user", [ 783.; 92.; 46.; 24. ]) ]);
    ("asp", [ ("kernel", [ 213.; 30.; 17.; 11. ]); ("user", [ 216.; 31.; 18.; 11. ]) ]);
    ("ab", [ ("kernel", [ 565.; 106.; 78.; 60. ]); ("user", [ 567.; 106.; 78.; 59. ]) ]);
    ("rl", [ ("kernel", [ 759.; 132.; 115.; 114. ]); ("user", [ 767.; 133.; 119.; 108. ]) ]);
    ("sor", [ ("kernel", [ 118.; 20.; 14.; 13. ]); ("user", [ 118.; 19.; 13.; 11. ]) ]);
    ( "leq",
      [
        ("kernel", [ 521.; 102.; 91.; 127. ]);
        ("user", [ 527.; 113.; 112.; 164. ]);
        ("user-dedicated", [ 527.; 116.; 94.; 128. ]);
      ] );
  ]

let print_table1 () =
  hr "Table 1: communication latencies [ms] (paper values in parentheses)";
  Printf.printf
    "%6s  %-14s %-14s %-14s %-14s %-14s %-14s\n"
    "size" "unicast/user" "mcast/user" "RPC/user" "RPC/kernel" "group/user" "group/kernel";
  let rows = Core.Experiments.table1 () in
  List.iter2
    (fun r (_, (pu, pm, pru, prk, pgu, pgk)) ->
      Printf.printf
        "%6d  %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)   %5.2f (%4.2f)\n"
        r.Core.Experiments.lr_size r.Core.Experiments.lr_unicast pu
        r.Core.Experiments.lr_multicast pm r.Core.Experiments.lr_rpc_user pru
        r.Core.Experiments.lr_rpc_kernel prk r.Core.Experiments.lr_grp_user pgu
        r.Core.Experiments.lr_grp_kernel pgk)
    rows paper_table1

let print_table2 () =
  hr "Table 2: communication throughputs [KB/s] (paper values in parentheses)";
  let paper = [ ("RPC", (825., 897.)); ("group", (941., 941.)) ] in
  List.iter2
    (fun r (_, (pu, pk)) ->
      Printf.printf "%-6s  user %5.0f (%4.0f)   kernel %5.0f (%4.0f)\n"
        r.Core.Experiments.tr_proto r.Core.Experiments.tr_user pu
        r.Core.Experiments.tr_kernel pk)
    (Core.Experiments.table2 ())
    paper

let paper_time app impl procs =
  match List.assoc_opt app paper_table3 with
  | None -> None
  | Some impls -> (
      match List.assoc_opt impl impls with
      | None -> None
      | Some times -> (
          match List.assoc_opt procs [ (1, 0); (8, 1); (16, 2); (32, 3) ] with
          | Some idx -> List.nth_opt times idx
          | None -> None))

let print_table3 ?(procs = [ 1; 8; 16; 32 ]) () =
  hr "Table 3: Orca application runtimes [s] (paper values in parentheses)";
  Printf.printf "%-4s %-15s" "app" "implementation";
  List.iter (fun p -> Printf.printf "  %12s" (Printf.sprintf "P=%d" p)) procs;
  Printf.printf "  %8s\n" "speedup";
  let outcomes = Core.Experiments.table3 ~procs () in
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun o ->
      Hashtbl.replace by_key
        (o.Core.Runner.o_app, Core.Cluster.impl_label o.Core.Runner.o_impl, o.Core.Runner.o_procs)
        o)
    outcomes;
  let any_invalid = ref false in
  List.iter
    (fun (app, impls) ->
      List.iter
        (fun (impl, _) ->
          let times =
            List.filter_map (fun p -> Hashtbl.find_opt by_key (app, impl, p)) procs
          in
          if times <> [] then begin
            Printf.printf "%-4s %-15s" app impl;
            List.iter
              (fun o ->
                if not o.Core.Runner.o_valid then any_invalid := true;
                match paper_time app impl o.Core.Runner.o_procs with
                | Some pt ->
                  Printf.printf "  %6.1f (%4.0f)" o.Core.Runner.o_seconds pt
                | None -> Printf.printf "  %6.1f       " o.Core.Runner.o_seconds)
              times;
            (match (times, List.rev times) with
             | first :: _, last :: _ when List.length times > 1 ->
               Printf.printf "  %8.1f"
                 (first.Core.Runner.o_seconds /. last.Core.Runner.o_seconds)
             | _ -> ());
            Printf.printf "\n"
          end)
        impls)
    paper_table3;
  if !any_invalid then
    Printf.printf "WARNING: some runs produced checksums differing from the sequential reference!\n"
  else
    Printf.printf "(all runs validated against host-side sequential results)\n"

let print_breakdown () =
  let rpc_analytic = Core.Experiments.rpc_breakdown () in
  let grp_analytic = Core.Experiments.group_breakdown () in
  hr "RPC null-latency gap breakdown [us] (paper, Sec. 4.2)";
  let paper =
    [
      ("total user-kernel gap", 300.);
      ("context switches", 140.);
      ("register-window traps", 50.);
      ("double fragmentation", 40.);
      ("header size difference", 16.);
      ("untuned user-level FLIP interface", 54.);
    ]
  in
  List.iter2
    (fun (label, v) (_, pv) -> Printf.printf "  %-36s %6.0f (paper ~%3.0f)\n" label v pv)
    rpc_analytic paper;
  hr "Group breakdown [us]: total gap + user-path mechanism costs (paper, Sec. 4.3)";
  let paper =
    [
      ("total user-kernel gap", 230.);
      ("context switches", 110.);
      ("register-window traps", 50.);
      ("double fragmentation", 20.);
      ("header size difference", -24.);
      ("untuned user-level FLIP interface", 30.);
    ]
  in
  List.iter2
    (fun (label, v) (_, pv) ->
      Printf.printf "  %-48s %6.0f (paper's differential ~%4.0f)\n" label v pv)
    grp_analytic paper;
  hr "Measured accounting from the cost ledger [us/round] (Sec. 4.2/4.3 re-derived)";
  let rpc_measured, grp_measured = Core.Experiments.measured_breakdown () in
  let print_side analytic rows =
    List.iter
      (fun (label, v) ->
        match List.assoc_opt label analytic with
        | Some a -> Printf.printf "  %-48s %6.1f (analytic %6.1f)\n" label v a
        | None -> Printf.printf "  %-48s %6.1f\n" label v)
      rows
  in
  Printf.printf "RPC (user-kernel ledger deltas):\n";
  print_side rpc_analytic rpc_measured;
  Printf.printf "group (user path; total and header rows are deltas):\n";
  print_side grp_analytic grp_measured

let print_ablations () =
  hr "Ablation: dedicated sequencer for LEQ [s]";
  List.iter
    (fun o -> Format.printf "  %a@." Core.Runner.pp_outcome o)
    (Core.Experiments.ablation_dedicated_sequencer ~procs:[ 8; 16; 32 ] ());
  hr "Ablation: nonblocking broadcast (paper Sec. 6 extension)";
  List.iter
    (fun (label, ms) -> Printf.printf "  %-28s %6.3f ms\n" label ms)
    (Core.Experiments.ablation_nonblocking ());
  hr "Ablation: adaptive object placement (Sec. 2 runtime heuristic)";
  List.iter
    (fun (label, v) -> Printf.printf "  %-40s %8.1f\n" label v)
    (Core.Experiments.ablation_migration ());
  hr "Ablation: user-level network access (the paper's Sec. 6 projection)";
  List.iter
    (fun (label, v) -> Printf.printf "  %-42s %6.3f ms\n" label v)
    (Core.Experiments.ablation_user_level_network ());
  hr "Ablation: continuations vs blocked server threads (RL, P=16)";
  List.iter
    (fun (label, s) -> Printf.printf "  %-40s %6.1f s\n" label s)
    (Core.Experiments.ablation_continuations ~procs:16 ())

(* ------------------------------------------------------------------ *)
(* Bechamel: host-side cost of regenerating each artifact. *)

let bechamel_tests () =
  let open Bechamel in
  let t1 =
    Test.make ~name:"table1"
      (Staged.stage (fun () -> ignore (Core.Experiments.table1 ())))
  in
  let t2 =
    Test.make ~name:"table2"
      (Staged.stage (fun () -> ignore (Core.Experiments.table2 ())))
  in
  let t3 =
    Test.make ~name:"table3-tsp-P4"
      (Staged.stage (fun () ->
           ignore
             (Core.Runner.run ~impl:Core.Cluster.User ~procs:4
                (Core.Runner.app_named "tsp"))))
  in
  let tb =
    Test.make ~name:"breakdown-rpc"
      (Staged.stage (fun () -> ignore (Core.Experiments.rpc_breakdown ())))
  in
  Test.make_grouped ~name:"repro" [ t1; t2; t3; tb ]

let run_bechamel () =
  hr "Bechamel: host cost of regenerating each artifact";
  let open Bechamel in
  let open Toolkit in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 3.0) () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "  %-24s %10.3f ms/run\n" name (est /. 1e6)
      | Some [] | None -> Printf.printf "  %-24s (no estimate)\n" name)
    results

(* Observability options, recognised anywhere on the command line and
   stripped before artifact selection:
     --obs-log      turn on the simulator's timestamped event log
     --trace FILE   write a Chrome trace_event JSON of a user-space null
                    RPC run (load in chrome://tracing or Perfetto)
     --obs          dump the same run's ledger and statistics as CSV *)
let rec strip_obs = function
  | [] -> ([], [])
  | [ "--trace" ] ->
    prerr_endline "--trace needs a FILE argument";
    exit 2
  | "--trace" :: file :: rest ->
    let obs, sel = strip_obs rest in
    (`Trace file :: obs, sel)
  | "--obs" :: rest ->
    let obs, sel = strip_obs rest in
    (`Obs :: obs, sel)
  | "--obs-log" :: rest ->
    let obs, sel = strip_obs rest in
    (`Log :: obs, sel)
  | a :: rest ->
    let obs, sel = strip_obs rest in
    (obs, a :: sel)

let run_obs = function
  | `Log -> ()
  | `Trace file -> (
    let r, _busy = Core.Experiments.recorded_rpc () in
    try
      Obs.Export.to_file file (Obs.Export.chrome_trace r);
      Printf.printf
        "wrote Chrome trace of a user-space null RPC run to %s (%d spans)\n" file
        (Obs.Recorder.n_spans r)
    with Sys_error msg ->
      Printf.eprintf "cannot write trace: %s\n" msg;
      exit 1)
  | `Obs ->
    let r, _busy = Core.Experiments.recorded_rpc () in
    print_string (Obs.Export.csv r)

let () =
  let obs_opts, args = strip_obs (List.tl (Array.to_list Sys.argv)) in
  if List.mem `Log obs_opts then Obs.Log.enabled := true;
  let everything = args = [] && obs_opts = [] in
  let quick = List.mem "quick" args in
  let procs = if quick then [ 1; 8 ] else [ 1; 8; 16; 32 ] in
  let wants name = everything || List.mem name args || args = [ "quick" ] in
  if wants "table1" then print_table1 ();
  if wants "table2" then print_table2 ();
  if wants "breakdown" then print_breakdown ();
  if wants "table3" then print_table3 ~procs ();
  if wants "ablation" then print_ablations ();
  if List.mem "bechamel" args || everything then run_bechamel ();
  List.iter run_obs obs_opts
