(* Command-line driver for the reproduction: run any experiment of the
   paper's evaluation individually, with parameters. *)

open Cmdliner

let impl_conv =
  let parse = function
    | "kernel" -> Ok Core.Cluster.Kernel
    | "user" -> Ok Core.Cluster.User
    | "user-dedicated" -> Ok Core.Cluster.User_dedicated
    | "optimized" -> Ok Core.Cluster.User_optimized
    | s -> Error (`Msg (Printf.sprintf "unknown implementation %S" s))
  in
  Arg.conv (parse, fun fmt i -> Format.pp_print_string fmt (Core.Cluster.impl_label i))

let impl_arg =
  Arg.(
    value
    & opt impl_conv Core.Cluster.User
    & info [ "impl" ] ~doc:"kernel | user | user-dedicated | optimized")

let procs_arg =
  Arg.(value & opt int 8 & info [ "procs"; "p" ] ~doc:"Number of processors")

let profile_conv =
  let parse s =
    match Core.Params.net_profile_of_string s with
    | Some p -> Ok p
    | None when Sys.file_exists s -> (
      match Core.Params.net_profile_load s with
      | Ok p -> Ok p
      | Error e -> Error (`Msg (Printf.sprintf "profile file %s: %s" s e)))
    | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown network profile %S (expected %s, or a profile file)" s
              (String.concat " | "
                 (List.map
                    (fun p -> p.Core.Params.np_name)
                    Core.Params.net_profiles))))
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt p.Core.Params.np_name)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Core.Params.net10m
    & info [ "profile" ] ~docv:"ERA"
        ~doc:
          "Network era the cluster is built on: $(b,net10m) (the paper's \
           10 Mbit/s Ethernet, the default), $(b,net100m), $(b,net1g) or \
           $(b,net10g) — or the path of a profile file written by \
           $(b,calibrate --out).  Machine and protocol costs stay at their \
           1995 values; only wire, switch and NIC constants change.")

let size_arg = Arg.(value & opt int 0 & info [ "size" ] ~doc:"Message payload bytes")

let faults_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Faults.Spec.parse s) in
  Arg.conv (parse, Faults.Spec.pp)

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject deterministic network faults, e.g. \
           $(b,seed=42,loss=0.01,dup=0.005,burst=0.001x8,part=0.5+0.2).  Keys: \
           seed, loss, dup, corrupt, reorder, rdelay (us), burst=PxN, \
           part=T+D (s), swpart=T+D (s), seqcrash=T (s; crash the group \
           sequencer mid-run — needs a recoverable $(b,--sequencer) policy).")

let policy_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Panda.Seq_policy.of_string s) in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt (Panda.Seq_policy.to_string p))

let policy_list_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Panda.Seq_policy.parse_list s) in
  Arg.conv
    ( parse,
      fun fmt ps ->
        Format.pp_print_string fmt
          (String.concat "," (List.map Panda.Seq_policy.to_string ps)) )

let policy_arg =
  Arg.(
    value
    & opt policy_conv Panda.Seq_policy.Single
    & info [ "sequencer" ] ~docv:"MODE"
        ~doc:
          "Sequencer capacity policy for the group protocol: $(b,single) \
           (the paper's, default), $(b,batch)[:N], $(b,rotate)[:N], \
           $(b,shard)[:N] or $(b,failover).  The kernel stack accepts \
           single and batch only.")

let lanes_arg =
  Arg.(
    value & flag
    & info [ "lanes" ]
        ~doc:
          "Shard each multi-segment cluster (more than one Ethernet \
           segment, i.e. more than 8 machines) into conservative \
           per-segment engine lanes with deterministic cross-lane merge. \
           Laned runs are reproducible and bit-identical at every $(b,-j); \
           they also match the unlaned engine exactly unless the workload \
           produces same-instant cross-segment arrivals (heavy cluster \
           cells), where only the deterministic tie-break order differs. \
           Single-segment clusters always use the plain sequential \
           engine.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:
          "Run the experiment's independent simulations on $(docv) domains. \
           The output is bit-identical for every value; 1 (the default) is \
           the plain sequential path."
        ~docv:"N")

(* [with_pool jobs f] runs [f ?pool] under a domain pool of [jobs]
   workers; [jobs <= 1] passes no pool at all (the sequential path). *)
let with_pool jobs f =
  if jobs <= 1 then f ?pool:None ()
  else Exec.Pool.with_pool ~jobs (fun p -> f ?pool:(Some p) ())

(* CSV dumps for --out: one row per measured operating point, optionally
   prefixed by extra key columns (e.g. the tail grid's loss rate). *)
let metrics_csv_columns =
  [
    "label"; "op"; "offered"; "achieved"; "issued"; "completed"; "p50_ms";
    "p95_ms"; "p99_ms"; "p999_ms"; "mean_ms"; "max_ms"; "client_util";
    "server_util"; "seq_util"; "violations";
  ]

let metrics_csv_row (m : Load.Metrics.t) =
  [
    m.label; m.op;
    Printf.sprintf "%.3f" m.offered;
    Printf.sprintf "%.3f" m.achieved;
    string_of_int m.issued;
    string_of_int m.completed;
    Printf.sprintf "%.6f" m.p50_ms;
    Printf.sprintf "%.6f" m.p95_ms;
    Printf.sprintf "%.6f" m.p99_ms;
    Printf.sprintf "%.6f" m.p999_ms;
    Printf.sprintf "%.6f" m.mean_ms;
    Printf.sprintf "%.6f" m.max_ms;
    Printf.sprintf "%.6f" m.client_util;
    Printf.sprintf "%.6f" m.server_util;
    Printf.sprintf "%.6f" m.seq_util;
    string_of_int m.violations;
  ]

let write_csv path ~extra_columns rows =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (String.concat "," (extra_columns @ metrics_csv_columns));
      output_char oc '\n';
      List.iter
        (fun (extra, m) ->
          output_string oc (String.concat "," (extra @ metrics_csv_row m));
          output_char oc '\n')
        rows);
  Printf.printf "wrote %s (%d rows)\n" path (List.length rows)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Also dump every measured operating point to $(docv) as CSV")

(* --- latency --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the RPC run and write a Chrome trace_event JSON to $(docv) \
           (load in chrome://tracing or Perfetto)")

let obs_arg =
  Arg.(
    value & flag
    & info [ "obs" ] ~doc:"Dump the recorded RPC run's cost ledger and statistics as CSV")

let obs_log_arg =
  Arg.(
    value & flag
    & info [ "obs-log" ] ~doc:"Print the simulator's timestamped event log")

let latency_cmd =
  let run impl size net faults trace obs obs_log =
    if obs_log then Obs.Log.set_enabled true;
    let impl2 =
      match impl with
      | Core.Cluster.Kernel -> `Kernel
      | Core.Cluster.User_optimized -> `Opt
      | _ -> `User
    in
    let profile = Core.Experiments.(with_net net default_profile) in
    Printf.printf "RPC   %-6s %5d B: %.3f ms\n" (Core.Cluster.impl_label impl) size
      (Core.Experiments.rpc_latency ?faults ~profile ~impl:impl2 ~size ());
    Printf.printf "group %-6s %5d B: %.3f ms\n" (Core.Cluster.impl_label impl) size
      (Core.Experiments.group_latency ?faults ~profile ~impl:impl2 ~size ());
    if trace <> None || obs then begin
      let r, _busy = Core.Experiments.recorded_rpc ~impl:impl2 ~size () in
      (match trace with
       | Some file -> (
         try
           Obs.Export.to_file file (Obs.Export.chrome_trace r);
           Printf.printf "trace: %s (%d spans)\n" file (Obs.Recorder.n_spans r)
         with Sys_error msg ->
           Printf.eprintf "cannot write trace: %s\n" msg;
           exit 1)
       | None -> ());
      if obs then print_string (Obs.Export.csv r)
    end
  in
  Cmd.v (Cmd.info "latency" ~doc:"Measure RPC and group latency (Table 1 entries)")
    Term.(
      const run $ impl_arg $ size_arg $ profile_arg $ faults_arg $ trace_arg
      $ obs_arg $ obs_log_arg)

(* --- throughput --- *)

let throughput_cmd =
  let run net jobs =
    let profile = Core.Experiments.(with_net net default_profile) in
    List.iter
      (fun r ->
        Printf.printf "%-6s user %6.0f KB/s   kernel %6.0f KB/s   optimized %6.0f KB/s\n"
          r.Core.Experiments.tr_proto r.Core.Experiments.tr_user
          r.Core.Experiments.tr_kernel r.Core.Experiments.tr_opt)
      (with_pool jobs (fun ?pool () -> Core.Experiments.table2 ?pool ~profile ()))
  in
  Cmd.v (Cmd.info "throughput" ~doc:"Measure RPC and group throughput (Table 2)")
    Term.(const run $ profile_arg $ jobs_arg)

(* --- app --- *)

let app_cmd =
  let app_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun a -> (a.Core.Runner.app_name, a)) Core.Runner.apps))) None
      & info [] ~docv:"APP" ~doc:"tsp | asp | ab | rl | sor | leq")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print protocol and utilization counters")
  in
  let checked_arg =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "Run with the protocol-conformance checkers interposed \
             (at-most-once RPC, request/reply pairing, payload integrity, \
             gap-free identical total order); violations are printed and \
             make the run exit nonzero.")
  in
  let run app impl procs net faults checked stats lanes sequencer =
    let o =
      Core.Runner.run ?faults ~checked ~net ~lanes ~sequencer ~impl ~procs app
    in
    Format.printf "%a@." Core.Runner.pp_outcome o;
    if stats then Format.printf "  %a@." Core.Runner.pp_stats o.Core.Runner.o_stats;
    List.iter (fun v -> Printf.printf "  violation: %s\n" v) o.Core.Runner.o_violations;
    if o.Core.Runner.o_violations <> [] || not o.Core.Runner.o_valid then exit 1
  in
  Cmd.v
    (Cmd.info "app" ~doc:"Run one Orca application (a Table 3 cell)")
    Term.(
      const run $ app_arg $ impl_arg $ procs_arg $ profile_arg $ faults_arg
      $ checked_arg $ stats_arg $ lanes_arg $ policy_arg)

(* --- fault sweep --- *)

let fault_sweep_cmd =
  let rates_arg =
    Arg.(
      value
      & opt (list float) [ 0.; 0.001; 0.01; 0.05 ]
      & info [ "rates" ] ~docv:"P,..."
          ~doc:"Frame-loss probabilities to sweep (comma-separated)")
  in
  let app_arg =
    Arg.(value & opt string "tsp" & info [ "app" ] ~doc:"Application for the checked run")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed of the fault schedules")
  in
  let run rates app procs net seed lanes jobs =
    Core.Cluster.set_default_lanes lanes;
    let rows =
      with_pool jobs (fun ?pool () ->
          Core.Experiments.fault_sweep ?pool ~net ~rates ~app_name:app ~procs
            ~seed ())
    in
    List.iter (fun r -> Format.printf "%a@." Core.Experiments.pp_fault_row r) rows;
    if
      List.exists
        (fun r -> r.Core.Experiments.fw_violations > 0 || not r.Core.Experiments.fw_valid)
        rows
    then exit 1
  in
  Cmd.v
    (Cmd.info "fault-sweep"
       ~doc:
         "Latency and correctness of both stacks vs. frame-loss rate \
          (checked mode; nonzero exit on any invariant violation)")
    Term.(
      const run $ rates_arg $ app_arg $ procs_arg $ profile_arg $ seed_arg
      $ lanes_arg $ jobs_arg)

(* --- load sweep --- *)

let load_sweep_cmd =
  let impls_arg =
    Arg.(
      value
      & opt (some (list impl_conv)) None
      & info [ "impls" ] ~docv:"IMPL,..."
          ~doc:"Stacks to sweep (default kernel,user,optimized)")
  in
  let rates_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "rates" ] ~docv:"R,..."
          ~doc:"Offered-load ramp in aggregate ops/s (comma-separated)")
  in
  let nodes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "nodes" ]
          ~doc:"Cluster size in machines (default 4; 8 with $(b,--sequencer))")
  in
  let clients_arg =
    Arg.(
      value & opt int Load.Clients.default.Load.Clients.clients_per_node
      & info [ "clients" ] ~doc:"Client threads per client node")
  in
  let op_arg =
    Arg.(
      value
      & opt (enum [ ("rpc", Load.Clients.Rpc); ("group", Load.Clients.Group) ]) Load.Clients.Rpc
      & info [ "op" ] ~doc:"Operation under load: $(b,rpc) or $(b,group)")
  in
  let arrival_arg =
    let arrival_conv =
      let parse s = Result.map_error (fun m -> `Msg m) (Load.Arrival.parse s) in
      Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Load.Arrival.to_string a))
    in
    Arg.(
      value & opt arrival_conv Load.Arrival.Uniform
      & info [ "arrival" ] ~docv:"PROC"
          ~doc:
            "Arrival process: $(b,uniform), $(b,poisson), $(b,closed=US) \
             (think time, us), $(b,ramp:S)[$(b,/FLOOR)] (diurnal \
             raised-cosine, period S seconds) or $(b,replay:FILE)[$(b,@SCALE)] \
             (trace replay; see the $(b,replay) command)")
  in
  let mix_arg =
    let mix_conv =
      let parse s = Result.map_error (fun m -> `Msg m) (Load.Mix.parse s) in
      Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Load.Mix.to_string m))
    in
    Arg.(
      value & opt mix_conv (Load.Mix.single 0)
      & info [ "mix" ] ~docv:"SIZExW,..."
          ~doc:"Weighted request-size mix in bytes, e.g. $(b,64x9,8192x1)")
  in
  let window_arg =
    Arg.(
      value & opt float 1.
      & info [ "window" ] ~doc:"Measurement window, simulated seconds")
  in
  let warmup_arg =
    Arg.(
      value & opt float 0.25 & info [ "warmup" ] ~doc:"Warmup before the window, seconds")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed of the client RNG streams")
  in
  let seq_arg =
    Arg.(
      value
      & opt ~vopt:(Some [ Panda.Seq_policy.Single ]) (some policy_list_conv) None
      & info [ "sequencer" ] ~docv:"MODE,..."
          ~doc:
            "Run the sequencer-saturation experiment instead of a rate ramp: \
             closed-loop group senders scaled over ranks until the sequencer \
             is the bottleneck.  Without a value (or with $(b,single)) the \
             three stacks are compared under the paper's protocol; with \
             policy modes ($(b,single) | $(b,batch)[:N] | $(b,rotate)[:N] | \
             $(b,shard)[:N] | $(b,failover), comma-separated, or $(b,all)) \
             the user stack's capacity is swept policy by policy.")
  in
  let checked_arg =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "Interpose the protocol-conformance checkers on every cell; \
             violations are printed and make the run exit nonzero.")
  in
  let run impls rates nodes clients op arrival mix window warmup seed sequencer
      net faults checked out lanes jobs =
    Core.Cluster.set_default_lanes lanes;
    let config =
      {
        Load.Clients.default with
        Load.Clients.op;
        mix;
        arrival;
        clients_per_node = clients;
        warmup = Sim.Time.us_f (warmup *. 1e6);
        window = Sim.Time.us_f (window *. 1e6);
        seed;
      }
    in
    let nodes =
      match nodes with Some n -> n | None -> if sequencer <> None then 8 else 4
    in
    let violations = ref 0 in
    let csv_rows = ref [] in
    let note_metrics ?(extra = []) m = csv_rows := (extra, m) :: !csv_rows in
    (match sequencer with
     | Some [ Panda.Seq_policy.Single ] | Some [] ->
       (* The classic three-stack saturation comparison, all under the
          paper's single-sequencer protocol. *)
       List.iter
         (fun (_, rows) ->
           List.iter
             (fun ((s, m) as row) ->
               violations := !violations + m.Load.Metrics.violations;
               note_metrics ~extra:[ string_of_int s ] m;
               Format.printf "%a@." Core.Experiments.pp_saturation_row row)
             rows;
           Format.printf "@.")
         (with_pool jobs (fun ?pool () ->
              Core.Experiments.sequencer_saturation ?pool ?faults ~checked ~net
                ~nodes ~clients_per_node:clients ~config ?impls ()))
     | Some policies ->
       (* Policy × senders capacity table over one stack (the first of
          --impls, default user). *)
       let impl =
         match impls with Some (i :: _) -> i | _ -> Core.Cluster.User
       in
       List.iter
         (fun (policy, rows) ->
           List.iter
             (fun ((s, m) as row) ->
               violations := !violations + m.Load.Metrics.violations;
               note_metrics
                 ~extra:[ Panda.Seq_policy.to_string policy; string_of_int s ]
                 m;
               Format.printf "%a@." Core.Experiments.pp_policy_row (policy, row))
             rows;
           Format.printf "@.")
         (with_pool jobs (fun ?pool () ->
              Core.Experiments.sequencer_policy_sweep ?pool ?faults ~checked
                ~net ~nodes ~clients_per_node:clients ~config ~impl ~policies ()))
     | None ->
       List.iter
         (fun (_, curve) ->
           List.iter
             (fun m ->
               violations := !violations + m.Load.Metrics.violations;
               note_metrics m)
             curve.Load.Sweep.c_points;
           Format.printf "%a@.@." Load.Sweep.pp_curve curve)
         (with_pool jobs (fun ?pool () ->
              Core.Experiments.load_sweep ?pool ?faults ~checked ~net ~nodes
                ~config ?rates ?impls ())));
    (match out with
     | Some path ->
       let extra_columns =
         match sequencer with
         | None -> []
         | Some [ Panda.Seq_policy.Single ] | Some [] -> [ "senders" ]
         | Some _ -> [ "policy"; "senders" ]
       in
       write_csv path ~extra_columns (List.rev !csv_rows)
     | None -> ());
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "load-sweep"
       ~doc:
         "Drive the stacks with sustained seeded traffic: throughput-latency \
          curves with tail percentiles and knee detection, or (with \
          $(b,--sequencer)) group-sender scaling until the sequencers saturate")
    Term.(
      const run $ impls_arg $ rates_arg $ nodes_arg $ clients_arg $ op_arg
      $ arrival_arg $ mix_arg $ window_arg $ warmup_arg $ seed_arg $ seq_arg
      $ profile_arg $ faults_arg $ checked_arg $ out_arg $ lanes_arg $ jobs_arg)

(* --- scenario: replay / tail-grid / soak / calibrate --- *)

let mix_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Load.Mix.parse s) in
  Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Load.Mix.to_string m))

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed for all RNG streams")

let replay_cmd =
  let gen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "gen" ] ~docv:"FILE"
          ~doc:
            "Synthesize a trace (diurnal ramp x bursts over a Poisson base) \
             and write it to $(docv) instead of, or before, replaying")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Replay $(docv) against a cluster; with $(b,--gen FILE) and no \
             $(b,--trace), the generated trace is replayed directly")
  in
  let rate_arg =
    Arg.(
      value & opt float 400.
      & info [ "rate" ] ~doc:"Peak aggregate arrival rate for synthesis, ops/s")
  in
  let duration_arg =
    Arg.(
      value & opt float 2.
      & info [ "duration" ] ~doc:"Synthesized trace length, seconds")
  in
  let period_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "period" ]
          ~doc:"Diurnal cycle of the synthesized ramp, seconds (default: the whole duration)")
  in
  let floor_arg =
    Arg.(
      value & opt float 0.1
      & info [ "floor" ] ~doc:"Trough rate as a fraction of the peak, in (0, 1]")
  in
  let burst_arg =
    Arg.(
      value & opt float 3.
      & info [ "burst-mult" ] ~doc:"Rate multiplier inside periodic burst windows")
  in
  let scale_arg =
    Arg.(
      value & opt float 1.
      & info [ "scale" ]
          ~doc:
            "Time-scale the replayed trace: $(docv) < 1 compresses it \
             (higher offered load), > 1 stretches it"
        ~docv:"F")
  in
  let mix_arg =
    Arg.(
      value & opt mix_conv (Load.Mix.single 0)
      & info [ "mix" ] ~docv:"SIZExW,..."
          ~doc:"Request-size mix drawn during synthesis, e.g. $(b,64x9,8192x1)")
  in
  let nodes_arg =
    Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster size in machines")
  in
  let clients_arg =
    Arg.(
      value & opt int Load.Clients.default.Load.Clients.clients_per_node
      & info [ "clients" ] ~doc:"Client threads per client node")
  in
  let checked_arg =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:"Interpose the protocol-conformance checkers; violations exit nonzero")
  in
  let run gen trace rate duration period floor burst_mult scale mix impl nodes
      clients checked seed net faults lanes =
    Core.Cluster.set_default_lanes lanes;
    (match gen with
     | Some path ->
       let duration = Sim.Time.us_f (duration *. 1e6) in
       let period = Option.map (fun s -> Sim.Time.us_f (s *. 1e6)) period in
       let t =
         Load.Trace.synthesize ?period ~floor ~burst_mult ~mix ~rate ~duration
           ~seed ()
       in
       Load.Trace.save path t;
       Printf.printf "wrote %s: %d requests over %.3f s (peak %.0f/s, floor %.2f)\n"
         path (Load.Trace.length t)
         (Sim.Time.to_sec (Load.Trace.duration t))
         rate floor
     | None -> ());
    let replay_path =
      match (trace, gen) with Some p, _ -> Some p | None, g -> g
    in
    match replay_path with
    | None ->
      if gen = None then (
        prerr_endline "replay: nothing to do (need --gen and/or --trace)";
        exit 2)
    | Some path ->
      let tr =
        match Load.Trace.load path with
        | Ok t -> Load.Trace.scale scale t
        | Error e ->
          prerr_endline ("replay: " ^ e);
          exit 2
      in
      (* The window covers the whole scaled trace plus drain slack, so
         every entry is measured; warmup 0 keeps trace offset = schedule. *)
      let cfg =
        {
          Load.Clients.default with
          Load.Clients.arrival =
            Load.Arrival.Replay { rp_path = path; rp_scale = scale };
          clients_per_node = clients;
          warmup = 0;
          window = Load.Trace.duration tr + Sim.Time.ms 500;
          seed;
        }
      in
      let m = Core.Experiments.load_cell ?faults ~checked ~net ~nodes ~impl cfg () in
      Format.printf "%a@.%a@." Load.Metrics.pp_header () Load.Metrics.pp m;
      if m.Load.Metrics.violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Synthesize and/or replay a timestamped request trace against a \
          cluster: entries are dealt round-robin to the client population \
          and latency is measured from each request's scheduled trace time")
    Term.(
      const run $ gen_arg $ trace_arg $ rate_arg $ duration_arg $ period_arg
      $ floor_arg $ burst_arg $ scale_arg $ mix_arg $ impl_arg $ nodes_arg
      $ clients_arg $ checked_arg $ seed_arg $ profile_arg $ faults_arg
      $ lanes_arg)

let tail_grid_cmd =
  let impls_arg =
    Arg.(
      value
      & opt (some (list impl_conv)) None
      & info [ "impls" ] ~docv:"IMPL,..."
          ~doc:"Stacks to grid (default kernel,user,optimized)")
  in
  let losses_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "losses" ] ~docv:"P,..."
          ~doc:
            "Frame-loss probabilities (default 0,0.001,0.01,0.03); a 0 \
             baseline column is added if omitted")
  in
  let rates_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "rates" ] ~docv:"R,..."
          ~doc:"Offered loads in aggregate ops/s (default 200,800)")
  in
  let nodes_arg =
    Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster size in machines")
  in
  let window_arg =
    Arg.(
      value & opt float 1.
      & info [ "window" ] ~doc:"Measurement window, simulated seconds")
  in
  let run impls losses rates nodes window seed net out lanes jobs =
    Core.Cluster.set_default_lanes lanes;
    let config =
      {
        Load.Clients.default with
        Load.Clients.window = Sim.Time.us_f (window *. 1e6);
        seed;
      }
    in
    let cells =
      with_pool jobs (fun ?pool () ->
          Core.Experiments.tail_grid ?pool ~net ~nodes ~config ?losses ?rates
            ?impls ())
    in
    List.iter (fun c -> Format.printf "%a@." Core.Experiments.pp_tail_cell c) cells;
    match out with
    | Some path ->
      write_csv path ~extra_columns:[ "loss" ]
        (List.map
           (fun c ->
             ( [ Printf.sprintf "%.6f" c.Core.Experiments.tc_loss ],
               c.Core.Experiments.tc_metrics ))
           cells)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "tail-grid"
       ~doc:
         "Sweep frame-loss rate x offered load per stack and report \
          p99/p99.9 tail amplification over the loss-free baseline — the \
          cost of the 200 ms retransmission timeout under loss")
    Term.(
      const run $ impls_arg $ losses_arg $ rates_arg $ nodes_arg $ window_arg
      $ seed_arg $ profile_arg $ out_arg $ lanes_arg $ jobs_arg)

let soak_cmd =
  let nodes_arg =
    Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster size in machines")
  in
  let op_arg =
    Arg.(
      value
      & opt (enum [ ("rpc", Load.Clients.Rpc); ("group", Load.Clients.Group) ])
          Load.Clients.Rpc
      & info [ "op" ] ~doc:"Operation under load: $(b,rpc) or $(b,group)")
  in
  let rate_arg =
    Arg.(
      value & opt float Scenario.Soak.default.Scenario.Soak.sk_rate
      & info [ "rate" ] ~doc:"Peak aggregate arrival rate, ops/s")
  in
  let period_arg =
    Arg.(
      value & opt float 2.
      & info [ "period" ] ~doc:"Diurnal cycle length, seconds")
  in
  let floor_arg =
    Arg.(
      value & opt float Scenario.Soak.default.Scenario.Soak.sk_floor
      & info [ "floor" ] ~doc:"Trough rate as a fraction of the peak, in (0, 1]")
  in
  let clients_arg =
    Arg.(
      value & opt int Scenario.Soak.default.Scenario.Soak.sk_clients_per_node
      & info [ "clients" ] ~doc:"Client threads per client node")
  in
  let window_arg =
    Arg.(
      value & opt float 0.25
      & info [ "window" ] ~doc:"Length of one report window, seconds")
  in
  let windows_arg =
    Arg.(
      value & opt int Scenario.Soak.default.Scenario.Soak.sk_windows
      & info [ "windows" ] ~doc:"Number of consecutive report windows")
  in
  let mix_arg =
    Arg.(
      value & opt mix_conv (Load.Mix.single 0)
      & info [ "mix" ] ~docv:"SIZExW,..." ~doc:"Weighted request-size mix")
  in
  let run impl nodes policy op rate period floor clients window windows mix
      seed net faults lanes =
    Core.Cluster.set_default_lanes lanes;
    let report =
      Scenario.Soak.run
        {
          Scenario.Soak.sk_impl = impl;
          sk_nodes = nodes;
          sk_policy = policy;
          sk_op = op;
          sk_mix = mix;
          sk_rate = rate;
          sk_period = Sim.Time.us_f (period *. 1e6);
          sk_floor = floor;
          sk_clients_per_node = clients;
          sk_warmup = Scenario.Soak.default.Scenario.Soak.sk_warmup;
          sk_window = Sim.Time.us_f (window *. 1e6);
          sk_windows = windows;
          sk_faults = faults;
          sk_net = Some net;
          sk_seed = seed;
        }
    in
    Format.printf "%a@." Scenario.Soak.pp_report report;
    if report.Scenario.Soak.r_violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Long-horizon soak: diurnal load, optional fault churn and mid-run \
          sequencer crash, conformance checkers always on, one timeline row \
          per window; nonzero exit on any invariant violation")
    Term.(
      const run $ impl_arg $ nodes_arg $ policy_arg $ op_arg $ rate_arg
      $ period_arg $ floor_arg $ clients_arg $ window_arg $ windows_arg
      $ mix_arg $ seed_arg $ profile_arg $ faults_arg $ lanes_arg)

let calibrate_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the fitted profile to $(docv) (readable by $(b,--profile))")
  in
  let name_arg =
    Arg.(
      value & opt string "fitted"
      & info [ "name" ] ~doc:"The fitted profile's $(b,name) field")
  in
  let run net name out =
    let m = Scenario.Calibrate.measure ~net () in
    Format.printf "%a" Scenario.Calibrate.pp m;
    match Scenario.Calibrate.fit ~name m with
    | Error e ->
      Format.printf "fit FAILED: %s@." e;
      exit 1
    | Ok fitted ->
      Format.printf "fitted constants:@.%s"
        (Core.Params.net_profile_to_string fitted);
      let ref_ms, fit_ms = Scenario.Calibrate.verify ~reference:net fitted in
      Format.printf "verify: user null RPC %.3f ms (reference) vs %.3f ms (fitted)%s@."
        ref_ms fit_ms
        (if ref_ms = fit_ms then " — exact" else " — MISMATCH");
      (match out with
       | Some path ->
         Core.Params.net_profile_save path fitted;
         Printf.printf "wrote %s\n" path
       | None -> ());
      if ref_ms <> fit_ms then exit 1
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Recover a network cost profile from probe simulations alone \
          (wire-busy, receive-interrupt and switch round-trip observables, \
          exact integer fits) and verify it reproduces the reference \
          latency; $(b,--out) saves a profile file for $(b,--profile)")
    Term.(const run $ profile_arg $ name_arg $ out_arg)

(* --- tables --- *)

let table_cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let table1 net jobs =
  let profile = Core.Experiments.(with_net net default_profile) in
  List.iter
    (fun r ->
      Printf.printf
        "%5d  uni %.2f  mcast %.2f  rpcU %.2f  rpcK %.2f  grpU %.2f  grpK %.2f  \
         rpcO %.2f  grpO %.2f\n"
        r.Core.Experiments.lr_size r.Core.Experiments.lr_unicast
        r.Core.Experiments.lr_multicast r.Core.Experiments.lr_rpc_user
        r.Core.Experiments.lr_rpc_kernel r.Core.Experiments.lr_grp_user
        r.Core.Experiments.lr_grp_kernel r.Core.Experiments.lr_rpc_opt
        r.Core.Experiments.lr_grp_opt)
    (with_pool jobs (fun ?pool () -> Core.Experiments.table1 ?pool ~profile ()))

let breakdown jobs =
  with_pool jobs (fun ?pool () ->
      List.iter
        (fun (l, v) -> Printf.printf "rpc: %-40s %7.1f us\n" l v)
        (Core.Experiments.rpc_breakdown ?pool ());
      List.iter
        (fun (l, v) -> Printf.printf "grp: %-40s %7.1f us\n" l v)
        (Core.Experiments.group_breakdown ?pool ());
      let rpc_m, grp_m = Core.Experiments.measured_breakdown ?pool () in
      List.iter
        (fun (l, v) -> Printf.printf "rpc measured: %-40s %7.1f us\n" l v)
        rpc_m;
      List.iter
        (fun (l, v) -> Printf.printf "grp measured: %-40s %7.1f us\n" l v)
        grp_m;
      let rpc_o, grp_o = Core.Experiments.optimized_breakdown ?pool () in
      Format.printf "@[<v>optimized rpc:@,%a@]@." Core.Experiments.pp_opt_breakdown rpc_o;
      Format.printf "@[<v>optimized grp:@,%a@]@." Core.Experiments.pp_opt_breakdown grp_o)

(* --- DHT and the one-sided crossover --- *)

let stack_conv =
  let parse s =
    match Core.Cluster.stack_of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown stack %S" s))
  in
  Arg.conv
    (parse, fun fmt s -> Format.pp_print_string fmt (Core.Cluster.stack_label s))

let dht_window_arg =
  Arg.(
    value & opt float 0.5
    & info [ "window" ] ~doc:"Measurement window, simulated seconds")

let dht_warmup_arg =
  Arg.(
    value & opt float 0.1
    & info [ "warmup" ] ~doc:"Warmup before the window, seconds")

let dht_clients_arg =
  Arg.(value & opt int 2 & info [ "clients" ] ~doc:"Client threads per client node")

let dht_nodes_arg =
  Arg.(value & opt int 4 & info [ "nodes" ] ~doc:"Cluster size in machines")

let dht_reads_arg =
  Arg.(
    value
    & opt (list int) [ 90 ]
    & info [ "reads" ] ~docv:"PCT,..."
        ~doc:"Get share(s) of the Zipf get/put mix, percent")

let dht_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed of the client RNG streams")

let checked_flag =
  Arg.(
    value & flag
    & info [ "checked" ]
        ~doc:
          "Interpose the protocol-conformance checkers (including the \
           one-sided at-most-once CAS invariants); violations make the \
           run exit nonzero.")

let dht_config ~clients ~warmup ~window ~seed =
  {
    Load.Clients.default with
    Load.Clients.clients_per_node = clients;
    warmup = Sim.Time.us_f (warmup *. 1e6);
    window = Sim.Time.us_f (window *. 1e6);
    seed;
  }

let xcell_violations c =
  c.Core.Experiments.xc_dht_violations
  + c.Core.Experiments.xc_latency.Load.Metrics.violations
  + c.Core.Experiments.xc_capacity.Load.Metrics.violations

let dht_cmd =
  let stack_arg =
    Arg.(
      value
      & opt stack_conv Core.Cluster.One_sided
      & info [ "stack" ] ~doc:"kernel | user | optimized | onesided")
  in
  let run stack reads nodes clients window warmup seed net faults checked lanes
      jobs =
    Core.Cluster.set_default_lanes lanes;
    let config = dht_config ~clients ~warmup ~window ~seed in
    let cells =
      with_pool jobs (fun ?pool () ->
          Core.Experiments.onesided_crossover ?pool ?faults ~checked
            ~nets:[ net ] ~stacks:[ stack ] ~read_pcts:reads ~nodes ~config ())
    in
    List.iter (fun c -> Format.printf "%a@." Core.Experiments.pp_xcell c) cells;
    if List.exists (fun c -> xcell_violations c > 0) cells then exit 1
  in
  Cmd.v
    (Cmd.info "dht"
       ~doc:
         "Run the Zipf get/put distributed hash table over one stack on one \
          network era (a crossover cell): latency probe plus closed-loop \
          capacity, with the ledger partition and coherence checks")
    Term.(
      const run $ stack_arg $ dht_reads_arg $ dht_nodes_arg $ dht_clients_arg
      $ dht_window_arg $ dht_warmup_arg $ dht_seed_arg $ profile_arg
      $ faults_arg $ checked_flag $ lanes_arg $ jobs_arg)

let crossover_cmd =
  let nets_arg =
    Arg.(
      value
      & opt (some (list profile_conv)) None
      & info [ "profiles" ] ~docv:"ERA,..."
          ~doc:"Network eras to sweep (default net10m,net100m,net1g)")
  in
  let stacks_arg =
    Arg.(
      value
      & opt (some (list stack_conv)) None
      & info [ "stacks" ] ~docv:"STACK,..."
          ~doc:"Stacks to compare (default kernel,user,optimized,onesided)")
  in
  let run nets stacks reads nodes clients window warmup seed faults checked
      lanes jobs =
    Core.Cluster.set_default_lanes lanes;
    let config = dht_config ~clients ~warmup ~window ~seed in
    let cells =
      with_pool jobs (fun ?pool () ->
          Core.Experiments.onesided_crossover ?pool ?faults ~checked ?nets
            ?stacks ~read_pcts:reads ~nodes ~config ())
    in
    List.iter (fun c -> Format.printf "%a@." Core.Experiments.pp_xcell c) cells;
    Format.printf "@.";
    List.iter
      (fun r -> Format.printf "%a@." Core.Experiments.pp_crossover_row r)
      (Core.Experiments.crossover_summary cells);
    if List.exists (fun c -> xcell_violations c > 0) cells then exit 1
  in
  Cmd.v
    (Cmd.info "crossover"
       ~doc:
         "Sweep the DHT workload over profile x stack x mix and report the \
          RPC-vs-one-sided capacity crossover with its ledger-differential \
          mechanism")
    Term.(
      const run $ nets_arg $ stacks_arg $ dht_reads_arg $ dht_nodes_arg
      $ dht_clients_arg $ dht_window_arg $ dht_warmup_arg $ dht_seed_arg
      $ faults_arg $ checked_flag $ lanes_arg $ jobs_arg)

(* --- cluster scale --- *)

let skew_conv =
  let parse s =
    match Load.Keys.skew_of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown skew %S (expected uniform | zipf:THETA)" s))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Load.Keys.skew_label k))

let cluster_cmd =
  let nodes_arg =
    Arg.(
      value
      & opt (list int) Core.Experiments.cluster_nodes
      & info [ "nodes" ] ~docv:"N,..."
          ~doc:
            "Pool sizes to sweep, machines (multi-segment: 8 per Ethernet \
             segment behind the switch).  64-512 are the intended scales.")
  in
  let stacks_arg =
    Arg.(
      value
      & opt (some (list stack_conv)) None
      & info [ "stacks" ] ~docv:"STACK,..."
          ~doc:"Stacks to sweep (default kernel,user,optimized,onesided)")
  in
  let skews_arg =
    Arg.(
      value
      & opt (list skew_conv) Core.Experiments.cluster_skews
      & info [ "skews" ] ~docv:"SKEW,..."
          ~doc:
            "Key popularity skews: $(b,uniform) or $(b,zipf:THETA) \
             (default uniform,zipf:0.99)")
  in
  let rates_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "rates" ] ~docv:"R,..."
          ~doc:"Open-loop offered-load ramp, aggregate ops/s (default 2000,4000,8000)")
  in
  let shards_arg =
    Arg.(value & opt int 32 & info [ "shards" ] ~doc:"Shards in the key space")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:"Copies per shard (primary + backups; one-sided runs force 1)")
  in
  let window_arg =
    Arg.(
      value & opt (some float) None
      & info [ "window" ] ~doc:"Measurement window, simulated seconds (default 0.4)")
  in
  let rebalance_arg =
    Arg.(
      value & flag
      & info [ "rebalance" ]
          ~doc:
            "Run the ledger-driven rebalancer: a controller samples every \
             server's CPU busy-time ledger and migrates shards off \
             saturated machines mid-run.")
  in
  let force_arg =
    Arg.(
      value
      & opt (list float) []
      & info [ "force-migrate" ] ~docv:"T,..."
          ~doc:
            "Simulated seconds at which the rebalancer must issue a \
             migration regardless of its saturation gates (implies \
             $(b,--rebalance)).")
  in
  let ab_arg =
    Arg.(
      value & flag
      & info [ "migration-ab" ]
          ~doc:
            "Instead of the rate sweep, run the placement A/B: the \
             identical skewed closed-loop workload with and without the \
             rebalancer, reporting the achieved-throughput delta \
             attributable to object migration.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Master seed of the client RNG streams")
  in
  let run nodes stacks skews rates shards replicas window seed rebalance forced
      ab net faults checked lanes jobs =
    Core.Cluster.set_default_lanes lanes;
    let rebalance =
      if (not rebalance) && forced = [] then None
      else
        Some
          {
            Core.Experiments.cluster_ab_rebalance with
            Shard.Rebalancer.rb_forced =
              List.map (fun t -> Sim.Time.us_f (t *. 1e6)) forced;
          }
    in
    let violations = ref 0 in
    let count c =
      violations :=
        !violations + c.Core.Experiments.cc_service_viol
        + c.Core.Experiments.cc_metrics.Load.Metrics.violations
    in
    if ab then begin
      let config =
        match window with
        | None -> { Core.Experiments.cluster_ab_config with Load.Clients.seed }
        | Some w ->
          {
            Core.Experiments.cluster_ab_config with
            Load.Clients.window = Sim.Time.us_f (w *. 1e6);
            seed;
          }
      in
      let nodes = List.nth_opt nodes 0 in
      let stack = Option.bind stacks (fun s -> List.nth_opt s 0) in
      let skew = List.nth_opt skews 0 in
      let static, rebal =
        with_pool jobs (fun ?pool () ->
            Core.Experiments.cluster_migration_ab ?pool ?faults ~checked ~net
              ~lanes ~shards ~replicas ?rebalance ?nodes ?stack ?skew ~config ())
      in
      count static;
      count rebal;
      Format.printf "static     %a@." Core.Experiments.pp_ccell static;
      Format.printf "rebalanced %a@." Core.Experiments.pp_ccell rebal;
      let a = static.Core.Experiments.cc_metrics.Load.Metrics.achieved
      and b = rebal.Core.Experiments.cc_metrics.Load.Metrics.achieved in
      Format.printf "migration delta: %+.1f%% (%d migrations)@."
        (100. *. (b -. a) /. a)
        rebal.Core.Experiments.cc_migrations
    end
    else begin
      let config =
        match window with
        | None -> { Core.Experiments.cluster_default_config with Load.Clients.seed }
        | Some w ->
          {
            Core.Experiments.cluster_default_config with
            Load.Clients.window = Sim.Time.us_f (w *. 1e6);
            seed;
          }
      in
      List.iter
        (fun ((n, stack, skew), cells, knee) ->
          Format.printf "-- %d nodes  %s  %s@." n
            (Core.Cluster.stack_label stack)
            (Load.Keys.skew_label skew);
          List.iter
            (fun c ->
              count c;
              Format.printf "%a@." Core.Experiments.pp_ccell c)
            cells;
          Format.printf "   knee: %a@.@." Core.Experiments.pp_knee knee)
        (with_pool jobs (fun ?pool () ->
             Core.Experiments.cluster_sweep ?pool ?faults ~checked ~net ~lanes
               ~shards ~replicas ?rebalance ~nodes ?stacks ~skews ?rates
               ~config ()))
    end;
    if !violations > 0 then begin
      Printf.eprintf "cluster: %d conformance violations\n" !violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Cluster-scale sharded service: 64-512 node multi-segment pools \
          under a Zipf-routed get/put workload, swept to the saturation \
          knee, with optional ledger-driven shard migration \
          ($(b,--rebalance), $(b,--force-migrate)) and the placement A/B \
          ($(b,--migration-ab))")
    Term.(
      const run $ nodes_arg $ stacks_arg $ skews_arg $ rates_arg $ shards_arg
      $ replicas_arg $ window_arg $ seed_arg $ rebalance_arg $ force_arg
      $ ab_arg $ profile_arg $ faults_arg $ checked_flag $ lanes_arg $ jobs_arg)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "amoeba_repro" ~version:"1.0"
      ~doc:
        "Reproduction of 'Comparing Kernel-Space and User-Space Communication \
         Protocols on Amoeba' (ICDCS 1995) as a discrete-event simulation"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            latency_cmd;
            throughput_cmd;
            app_cmd;
            fault_sweep_cmd;
            load_sweep_cmd;
            replay_cmd;
            tail_grid_cmd;
            soak_cmd;
            calibrate_cmd;
            dht_cmd;
            crossover_cmd;
            cluster_cmd;
            table_cmd "table1" "Regenerate Table 1 (latencies)"
              Term.(const table1 $ profile_arg $ jobs_arg);
            table_cmd "breakdown" "Regenerate the Sec. 4 overhead breakdowns"
              Term.(const breakdown $ jobs_arg);
          ]))
